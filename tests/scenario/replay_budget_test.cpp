// Adversarial relay vs. the gossip defenses: a replayer that re-injects
// stale signed roots with a reset hop count must be absorbed by the
// first-seen slots (no re-relay storm, no state growth) and must never
// manufacture evidence against honest provers; the hop budget must bound
// the honest flood itself.
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec relay_spec(const std::string& adversary,
                                      std::uint8_t hop_budget) {
  ScenarioSpec spec;
  spec.name = "test_relay";
  spec.seed = 17;
  spec.adversary = adversary;
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 12;
  spec.traffic.mean_interarrival_us = 3000;
  spec.gossip_hop_budget = hop_budget;
  return spec;
}

TEST(ReplayBudgetTest, ReplayedStaleRootsYieldNoFalseEvidence) {
  const ScenarioReport honest = run_scenario(relay_spec("honest", 8));
  const ScenarioReport replayed = run_scenario(relay_spec("replay_relay", 8));

  // Honest provers, hostile relay: evidence of ANY kind would be a false
  // accusation. The first-seen slots also stop re-relay: the only extra
  // gossip on the wire is the replayer's own injections (512 budget).
  EXPECT_EQ(honest.evidence_total, 0u);
  EXPECT_EQ(replayed.evidence_total, 0u);
  EXPECT_EQ(replayed.false_evidence, 0u);
  EXPECT_GT(replayed.gossip_messages, honest.gossip_messages)
      << "replayer injected nothing — the strategy is not exercising replay";
  EXPECT_LE(replayed.gossip_messages, honest.gossip_messages + 512u);
}

TEST(ReplayBudgetTest, HopBudgetBoundsTheFloodWithoutLosingDetection) {
  // Full verifier mesh: one relay hop reaches every verifier, so even the
  // tightest budget must keep equivocation detection at 100% while
  // shedding the deeper relay traffic a bigger budget allows.
  ScenarioSpec tight = relay_spec("equivocator", 1);
  ScenarioSpec loose = relay_spec("equivocator", 8);
  const ScenarioReport tight_report = run_scenario(tight);
  const ScenarioReport loose_report = run_scenario(loose);

  EXPECT_EQ(tight_report.detection_rate, 1.0);
  EXPECT_EQ(tight_report.false_evidence, 0u);
  EXPECT_EQ(loose_report.detection_rate, 1.0);
  EXPECT_LT(tight_report.gossip_messages, loose_report.gossip_messages);
}

TEST(ReplayBudgetTest, ReplayOnTopOfEquivocationChangesNothing) {
  // delay_replay = equivocator + dropper + delayer + replayer: the full
  // hostile wire must neither hide the attack nor smear honest ASes.
  const ScenarioReport report = run_scenario(relay_spec("delay_replay", 8));
  EXPECT_EQ(report.detection_rate, 1.0);
  EXPECT_EQ(report.false_evidence, 0u);
  EXPECT_EQ(report.audit_failures, 0u);
}

}  // namespace
}  // namespace pvr::scenario
