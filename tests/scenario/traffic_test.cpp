// Arrival-process generation: determinism, ordering, and process shape.
#include <gtest/gtest.h>

#include <map>

#include "scenario/traffic.h"

namespace pvr::scenario {
namespace {

TEST(TrafficTest, DeterministicAndSorted) {
  const TrafficParams params{.process = ArrivalProcess::kPoisson,
                             .mean_interarrival_us = 1500};
  const auto first = generate_arrivals(params, 4, 200, 9);
  const auto second = generate_arrivals(params, 4, 200, 9);
  ASSERT_EQ(first.size(), 200u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].neighborhood, second[i].neighborhood);
    EXPECT_EQ(first[i].prefix, second[i].prefix);
    if (i > 0) EXPECT_GE(first[i].at, first[i - 1].at);
  }
}

TEST(TrafficTest, RoundsSpreadAcrossNeighborhoodsWithUniquePrefixes) {
  const auto arrivals = generate_arrivals({}, 5, 100, 1);
  std::map<std::size_t, std::size_t> per_hood;
  std::map<std::pair<std::size_t, bgp::Ipv4Prefix>, std::size_t> per_round;
  for (const RoundArrival& arrival : arrivals) {
    per_hood[arrival.neighborhood] += 1;
    per_round[{arrival.neighborhood, arrival.prefix}] += 1;
  }
  ASSERT_EQ(per_hood.size(), 5u);
  for (const auto& [hood, count] : per_hood) EXPECT_EQ(count, 20u);
  // Within one neighborhood every round runs over its own prefix.
  for (const auto& [key, count] : per_round) EXPECT_EQ(count, 1u);
}

TEST(TrafficTest, PoissonMeanRoughlyMatches) {
  const TrafficParams params{.process = ArrivalProcess::kPoisson,
                             .mean_interarrival_us = 2000,
                             .start_jitter_us = 0};
  const auto arrivals = generate_arrivals(params, 1, 2000, 3);
  const double span =
      static_cast<double>(arrivals.back().at - arrivals.front().at);
  const double mean = span / static_cast<double>(arrivals.size() - 1);
  EXPECT_GT(mean, 1500.0);
  EXPECT_LT(mean, 2500.0);
}

TEST(TrafficTest, BurstyArrivalsShareTheNominalInstant) {
  const TrafficParams params{.process = ArrivalProcess::kBursty,
                             .mean_interarrival_us = 50'000,
                             .burst_size = 6,
                             .start_jitter_us = 0};
  const auto arrivals = generate_arrivals(params, 2, 60, 5);
  std::map<net::SimTime, std::size_t> groups;
  for (const RoundArrival& arrival : arrivals) groups[arrival.at] += 1;
  ASSERT_EQ(groups.size(), 10u);  // 60 arrivals in bursts of 6
  for (const auto& [at, count] : groups) EXPECT_EQ(count, 6u);
}

TEST(TrafficTest, UniformSpacingIsExactWithoutJitter) {
  const TrafficParams params{.process = ArrivalProcess::kUniform,
                             .mean_interarrival_us = 750,
                             .start_jitter_us = 0};
  const auto arrivals = generate_arrivals(params, 1, 10, 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].at - arrivals[i - 1].at, 750u);
  }
}

TEST(TrafficTest, RejectsZeroNeighborhoods) {
  EXPECT_THROW(generate_arrivals({}, 0, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pvr::scenario
