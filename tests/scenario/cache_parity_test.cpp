// World verdict-cache parity (DESIGN.md §15): the same ScenarioSpec run
// with the world-level verified-signature cache ON and OFF must produce a
// byte-identical report fingerprint AND evidence digest at every worker
// count, in both offline and online mode — the cache may only change how
// much RSA work was done, never a verdict, an evidence log, or the
// SIM-domain metrics fingerprint.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec cache_spec(bool online, bool world_sig_cache,
                                      std::size_t workers) {
  ScenarioSpec spec;
  spec.name = "cache_parity";
  spec.seed = 77;
  spec.adversary = "equivocator";  // gossip duplicates = real cache traffic
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 60;
  spec.attacked_fraction = 0.5;
  spec.traffic.mean_interarrival_us = 2000;
  spec.batch_deadline = 10'000;
  spec.online = online;
  spec.workers = workers;
  spec.world_sig_cache = world_sig_cache;
  return spec;
}

TEST(CacheParityTest, FingerprintAndEvidenceIdenticalCacheOnVsOff) {
  for (const bool online : {false, true}) {
    obs::MetricsRegistry::global().reset();
    const ScenarioReport off = run_scenario(cache_spec(online, false, 1));
    const std::string off_obs =
        obs::MetricsRegistry::global().snapshot().sim_fingerprint();
    ASSERT_EQ(off.world_cache_hits, 0u);
    ASSERT_EQ(off.verify_failures, 0u);

    for (const std::size_t workers : {1u, 2u, 8u}) {
      obs::MetricsRegistry::global().reset();
      const ScenarioReport on = run_scenario(cache_spec(online, true, workers));
      const std::string on_obs =
          obs::MetricsRegistry::global().snapshot().sim_fingerprint();
      EXPECT_EQ(on.fingerprint(), off.fingerprint())
          << "online=" << online << " workers=" << workers;
      EXPECT_EQ(on.evidence_digest, off.evidence_digest)
          << "online=" << online << " workers=" << workers;
      EXPECT_EQ(on_obs, off_obs)
          << "online=" << online << " workers=" << workers;
      EXPECT_EQ(on.verify_failures, 0u);
      if (obs::kCompiledIn) {
        // Gossip re-delivers the same signed bundles to every verifier in
        // the mesh, so the cache must actually fire...
        EXPECT_GT(on.world_cache_hits, 0u)
            << "online=" << online << " workers=" << workers;
        // ...and every hit is an exponentiation the cache-off run paid:
        // hits + misses-that-exponentiated == the cache-off verify count.
        EXPECT_EQ(on.rsa_verifies + on.world_cache_hits, off.rsa_verifies)
            << "online=" << online << " workers=" << workers;
      }
    }
  }
}

}  // namespace
}  // namespace pvr::scenario
