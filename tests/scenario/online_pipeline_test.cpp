// Online window-close verification pipeline (DESIGN.md §10): the same
// ScenarioSpec verified ONLINE — rounds submitted to the long-lived engine
// as their windows settle, drained every drain_interval_us of simulated
// time, settled state GC'd — must produce a report fingerprint
// byte-identical to the OFFLINE run at every drain interval and worker
// count, and per-node memory must be bounded by concurrently-open windows
// instead of trace length.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec parity_spec(const std::string& adversary,
                                       std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "online_parity_" + adversary;
  spec.seed = seed;
  spec.adversary = adversary;
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  // Long enough that the trace outlives the settle horizon several times
  // over — shorter traces quiesce before any round settles, degenerating
  // online mode into one tail flush that proves nothing about interleaving.
  spec.rounds = 120;
  spec.attacked_fraction = 0.5;
  spec.traffic.mean_interarrival_us = 2000;
  spec.batch_deadline = 10'000;
  return spec;
}

// Drain intervals in collection-window units: every window (1), a drain
// lagging several windows (7), and one so coarse most of the trace settles
// between two drains (64). The fingerprint must not notice.
class OnlineParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OnlineParityTest, FingerprintMatchesOfflineAtEveryDrainScheduleAndWorkerCount) {
  const std::string adversary = GetParam();
  const ScenarioSpec offline_spec = parity_spec(adversary, 33);
  const ScenarioReport offline = run_scenario(offline_spec);
  ASSERT_EQ(offline.detection_rate, 1.0) << adversary;
  ASSERT_EQ(offline.false_evidence, 0u) << adversary;
  ASSERT_EQ(offline.verify_failures, 0u) << adversary;
  ASSERT_FALSE(offline.online);

  for (const net::SimTime windows : {1u, 7u, 64u}) {
    for (const std::size_t workers : {1u, 2u, 8u}) {
      ScenarioSpec spec = parity_spec(adversary, 33);
      spec.online = true;
      spec.drain_interval_us = spec.collect_window * windows;
      spec.workers = workers;
      const ScenarioReport online = run_scenario(spec);
      EXPECT_EQ(online.fingerprint(), offline.fingerprint())
          << adversary << " diverged at drain interval " << windows
          << " windows, " << workers << " workers";
      EXPECT_EQ(online.verify_failures, 0u);
      EXPECT_EQ(online.detection_rate, 1.0);
      EXPECT_EQ(online.false_evidence, 0u);
      EXPECT_TRUE(online.online);
      EXPECT_GE(online.drain_batches, 1u);
      if (windows == 1 && adversary != "delay_replay") {
        // A per-window drain cadence must actually interleave with the
        // simulation, not degenerate into one big tail flush.
        // delay_replay is exempt: its declared wire slack puts the settle
        // horizon (~436 ms of sim time) beyond this trace's span, so a
        // single tail flush is the CORRECT schedule there — what it
        // contributes to this test is the horizon-stress parity check.
        EXPECT_GT(online.drain_batches, 2u) << adversary;
      }
    }
  }
}

// delay_replay is the settle-horizon stress: gossip delayed up to its
// declared per-message bound and stale roots re-injected a replay lag
// later. An understated horizon would snapshot rounds too early and break
// parity exactly here.
INSTANTIATE_TEST_SUITE_P(Adversaries, OnlineParityTest,
                         ::testing::Values("equivocator", "batch_split",
                                           "delay_replay", "honest"));

TEST(OnlinePipelineTest, RejectsZeroDrainInterval) {
  ScenarioSpec spec = parity_spec("honest", 1);
  spec.online = true;
  spec.drain_interval_us = 0;
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(OnlinePipelineTest, ReportMarksOnlineModeAndJsonCarriesGatedFields) {
  ScenarioSpec spec = parity_spec("equivocator", 5);
  spec.online = true;
  const ScenarioReport report = run_scenario(spec);
  const std::string json = report.to_json_line();
  EXPECT_NE(json.find("\"online\":true"), std::string::npos);
  EXPECT_NE(json.find("\"verify_failures\":0"), std::string::npos);
  EXPECT_NE(json.find("\"peak_open_rounds\":"), std::string::npos);
}

// The GC proof: a 50k-round online trace must complete with every node's
// open-round high-water mark bounded by the rounds that can be concurrently
// unsettled (windows still collecting, in their settle horizon, or awaiting
// the next drain) — NOT by trace length — while every attacked round still
// ends detected with auditor-valid evidence and zero false accusations.
// Sanitizer builds run the same pipeline at 10k rounds to stay inside the
// per-test timeout; the peak bound derives from the spec's timing, not the
// trace length, so the assertion is equally sharp at either size.
#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells it __SANITIZE_*__ instead
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr std::size_t kLongTraceRounds = 10'000;
#else
constexpr std::size_t kLongTraceRounds = 50'000;
#endif

TEST(OnlinePipelineTest, GcBoundsOpenRoundsOnFiftyThousandRoundTrace) {
  ScenarioSpec spec;
  spec.name = "online_gc_long_trace";
  spec.seed = 7;
  spec.adversary = "equivocator";
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  // Two lean neighborhoods (2 providers each) keep the 50k-round trace
  // inside the test-suite time budget; one of them is attacked.
  spec.neighborhoods = 2;
  spec.min_providers = 2;
  spec.max_providers = 2;
  spec.attacked_fraction = 0.5;
  spec.rounds = kLongTraceRounds;
  spec.traffic.mean_interarrival_us = 400;
  spec.traffic.process = ArrivalProcess::kUniform;
  spec.batch_deadline = 8'000;
  spec.online = true;
  spec.drain_interval_us = 20'000;
  const ScenarioReport report = run_scenario(spec);

  EXPECT_EQ(report.rounds_started, kLongTraceRounds);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.detection_rate, 1.0);
  EXPECT_EQ(report.false_evidence, 0u);
  EXPECT_EQ(report.audit_failures, 0u);
  EXPECT_GT(report.evidence_total, 0u);  // evidence survived the GC

  // Concurrently-unsettled span: collection window + batching deadline +
  // settle horizon (the one the runner actually derived and waited out,
  // echoed in the report) + one drain interval. With one arrival every
  // 400 µs round-robined over 2 neighborhoods, the rounds a node can hold
  // at once are span / (2 * 400 µs); 4x covers jitter, partial batches,
  // and any horizon slack — far under the full trace an unbounded node
  // would hold.
  ASSERT_GT(report.settle_horizon_us, 0u);
  const std::uint64_t span_us =
      4000 + 8000 + report.settle_horizon_us + 20'000;
  const std::uint64_t bound = 4 * span_us / (2 * 400);
  EXPECT_LE(report.peak_open_rounds, bound);
  EXPECT_LT(report.peak_open_rounds, report.rounds_started / 20);
  EXPECT_GT(report.drain_batches, 100u);
}

}  // namespace
}  // namespace pvr::scenario
