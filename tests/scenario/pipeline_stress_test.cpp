// Stress tests for the pipelined (double-buffered) online drain — DESIGN.md
// §12 — and the epoch-keyed seen-root GC that rides on its harvest step:
//
//   1. seeded-random drain cadences against bursty traffic: the pipelined
//      schedule must reproduce BOTH the offline fingerprint and the
//      synchronous schedule's evidence digest (the digest pins application
//      ORDER, so batch N+1's findings landing before batch N's would show
//      up even when the counts agree);
//   2. a drain cadence fine enough that the trace ends with a sealed batch
//      still in flight: the tail barrier must harvest it and preserve
//      parity (harvest_pending_at_end is the forced state);
//   3. epoch rotation on a long trace: the per-node root-dedup footprint
//      must track concurrently-OPEN epochs, not trace length, and every
//      epoch must be retired once the tail barrier runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "crypto/drbg.h"
#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec bursty_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "pipeline_stress";
  spec.seed = seed;
  spec.adversary = "equivocator";
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 120;
  spec.attacked_fraction = 0.5;
  // Bursts slam several windows shut near-simultaneously, so single drain
  // ticks seal multi-round batches — the workload where an ordering bug
  // between the two slots has the most rounds to scramble.
  spec.traffic.process = ArrivalProcess::kBursty;
  spec.traffic.burst_size = 8;
  spec.traffic.mean_interarrival_us = 9000;
  spec.batch_deadline = 10'000;
  return spec;
}

// Randomized (seeded) drain cadences: at every cadence, the pipelined
// two-slot schedule must match the offline fingerprint byte-for-byte AND
// apply findings in exactly the order the synchronous schedule does.
TEST(PipelineStressTest, RandomDrainCadencesPreserveOrderUnderBurstyTraffic) {
  const ScenarioReport offline = run_scenario(bursty_spec(91));
  ASSERT_EQ(offline.detection_rate, 1.0);
  ASSERT_EQ(offline.false_evidence, 0u);
  ASSERT_EQ(offline.verify_failures, 0u);
  ASSERT_FALSE(offline.evidence_digest.empty());

  crypto::Drbg rng(91, "pipeline-stress-cadence");
  for (int draw = 0; draw < 4; ++draw) {
    // 1..16 collection windows per drain tick, seeded so the sweep is
    // reproducible but not hand-picked around the batching boundaries.
    const net::SimTime windows = 1 + rng.uniform(16);
    ScenarioSpec pipelined = bursty_spec(91);
    pipelined.online = true;
    pipelined.drain_interval_us = pipelined.collect_window * windows;
    ScenarioSpec synchronous = pipelined;
    synchronous.pipelined = false;

    const ScenarioReport piped = run_scenario(pipelined);
    const ScenarioReport sync = run_scenario(synchronous);
    const std::string label =
        "drain interval " + std::to_string(windows) + " windows";

    EXPECT_EQ(piped.fingerprint(), offline.fingerprint()) << label;
    EXPECT_EQ(sync.fingerprint(), offline.fingerprint()) << label;
    EXPECT_EQ(piped.verify_failures, 0u) << label;
    EXPECT_EQ(sync.verify_failures, 0u) << label;
    // Same drain schedule -> same batches; the evidence digest then pins
    // that the two-slot buffer applied batch N fully before batch N+1.
    EXPECT_EQ(piped.drain_batches, sync.drain_batches) << label;
    ASSERT_FALSE(piped.evidence_digest.empty()) << label;
    EXPECT_EQ(piped.evidence_digest, sync.evidence_digest) << label;
  }
}

// Forces the harvest-pending tail state: with a drain tick every collection
// window, the final tick seals a batch the simulator never gets another
// tick to harvest — the tail barrier must collect it (and the rounds whose
// settle horizon outlived the trace) without breaking parity.
TEST(PipelineStressTest, TailBarrierFlushesTheInFlightBatchAtTraceEnd) {
  // Dense Poisson arrivals keep windows settling all the way to the last
  // simulated event (bursty gaps would let the trace quiesce first), so
  // the final per-window drain tick always finds rounds to seal.
  ScenarioSpec base = bursty_spec(92);
  base.traffic.process = ArrivalProcess::kPoisson;
  base.traffic.mean_interarrival_us = 2000;
  const ScenarioReport offline = run_scenario(base);

  ScenarioSpec spec = base;
  spec.online = true;
  spec.drain_interval_us = spec.collect_window;
  const ScenarioReport online = run_scenario(spec);

  EXPECT_TRUE(online.harvest_pending_at_end)
      << "per-window drain cadence was expected to leave the final batch "
         "in flight at trace end — the state this test exists to force";
  EXPECT_EQ(online.fingerprint(), offline.fingerprint());
  EXPECT_EQ(online.verify_failures, 0u);
  EXPECT_GT(online.drain_batches, 2u);

  // Offline and synchronous runs never end with an in-flight batch.
  EXPECT_FALSE(offline.harvest_pending_at_end);
  ScenarioSpec synchronous = spec;
  synchronous.pipelined = false;
  EXPECT_FALSE(run_scenario(synchronous).harvest_pending_at_end);
}

// Epoch-keyed seen-root GC: rotating epochs over a long trace must keep
// each node's root-dedup digest set sized by the epochs that can still be
// OPEN (inside the settle span) — not by the trace — and the tail barrier
// must retire every epoch.
TEST(PipelineStressTest, RootDedupFootprintTracksOpenEpochsOnLongTrace) {
  const auto long_spec = [](std::size_t rounds_per_epoch) {
    ScenarioSpec spec;
    spec.name = "pipeline_epoch_gc";
    spec.seed = 17;
    spec.adversary = "equivocator";
    spec.topology.as_count = 400;
    spec.topology.tier1_count = 6;
    spec.neighborhoods = 2;
    spec.min_providers = 2;
    spec.max_providers = 2;
    spec.attacked_fraction = 0.5;
    spec.rounds = 2000;
    spec.traffic.process = ArrivalProcess::kUniform;
    spec.traffic.mean_interarrival_us = 400;
    spec.traffic.rounds_per_epoch = rounds_per_epoch;
    spec.batch_deadline = 8'000;
    spec.online = true;
    spec.drain_interval_us = 20'000;
    return spec;
  };

  // Rotate an epoch every 100 rounds (20 epochs) vs the legacy single
  // epoch, whose digests cannot retire before the whole trace settles.
  const ScenarioReport rotated = run_scenario(long_spec(100));
  const ScenarioReport single = run_scenario(long_spec(0));

  for (const ScenarioReport* report : {&rotated, &single}) {
    EXPECT_EQ(report->verify_failures, 0u);
    EXPECT_EQ(report->detection_rate, 1.0);
    EXPECT_EQ(report->false_evidence, 0u);
    // The tail barrier harvested every round, so every epoch (20 or 1)
    // finished retiring — no digest set survives the run.
    EXPECT_EQ(report->final_root_epochs, 0u);
  }
  ASSERT_GT(single.peak_root_digests, 0u);

  // "Tracks open epochs": an epoch spans rounds_per_epoch x interarrival
  // of sim time; an epoch stays open for at most that span plus the
  // settle span (collection window + batching deadline + settle horizon +
  // one drain tick). The single-epoch peak is the whole trace's digest
  // population, so scaling it to the open-epoch fraction bounds what the
  // rotated run may hold at once; 4x absorbs jitter and partial batches.
  ASSERT_GT(rotated.settle_horizon_us, 0u);
  const double epoch_span_us = 100 * 400.0;
  const double open_span_us = epoch_span_us + 4000 + 8000 +
                              static_cast<double>(rotated.settle_horizon_us) +
                              20'000;
  const double open_fraction =
      open_span_us / (2000 * 400.0);  // trace spans rounds x interarrival
  const auto bound = static_cast<std::uint64_t>(
      4.0 * open_fraction * static_cast<double>(single.peak_root_digests));
  EXPECT_LE(rotated.peak_root_digests, bound)
      << "rotated peak " << rotated.peak_root_digests
      << " vs single-epoch peak " << single.peak_root_digests;
  // And the headline: rotation + GC must beat the unrotated footprint by a
  // wide margin on a trace 20 epochs long.
  EXPECT_LT(rotated.peak_root_digests, single.peak_root_digests / 2);
}

}  // namespace
}  // namespace pvr::scenario
