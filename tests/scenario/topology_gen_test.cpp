// The scenario topology generator: determinism, scale, tier structure, and
// neighborhood selection.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "scenario/topology_gen.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] bool same_graph(const GeneratedTopology& a,
                              const GeneratedTopology& b) {
  if (a.tiers != b.tiers) return false;
  if (a.graph.link_count() != b.graph.link_count()) return false;
  for (const bgp::AsNumber asn : a.graph.as_numbers()) {
    if (a.graph.neighbors(asn) != b.graph.neighbors(asn)) return false;
  }
  return true;
}

TEST(TopologyGenTest, DeterministicInSeed) {
  const TopologyParams params{.as_count = 500};
  const GeneratedTopology first = generate_topology(params, 42);
  const GeneratedTopology second = generate_topology(params, 42);
  EXPECT_TRUE(same_graph(first, second));

  const GeneratedTopology other = generate_topology(params, 43);
  EXPECT_FALSE(same_graph(first, other));
}

TEST(TopologyGenTest, ScalesTo10kAsesConnected) {
  const TopologyParams params{.as_count = 10'000, .tier1_count = 10};
  const GeneratedTopology topology = generate_topology(params, 7);
  ASSERT_EQ(topology.graph.as_count(), 10'000u);

  // Every AS attaches to at least one earlier provider, so the graph is
  // connected: BFS from the first tier-1 AS must reach everyone.
  std::set<bgp::AsNumber> seen = {params.asn_base};
  std::queue<bgp::AsNumber> frontier;
  frontier.push(params.asn_base);
  while (!frontier.empty()) {
    const bgp::AsNumber asn = frontier.front();
    frontier.pop();
    for (const bgp::AsNumber neighbor : topology.graph.neighbors(asn)) {
      if (seen.insert(neighbor).second) frontier.push(neighbor);
    }
  }
  EXPECT_EQ(seen.size(), 10'000u);

  // Power-law shape: the hubs' degree dwarfs the mean (preferential
  // attachment; a uniform-attachment graph would stay near the mean).
  const double mean_degree =
      2.0 * static_cast<double>(topology.graph.link_count()) / 10'000.0;
  EXPECT_GT(static_cast<double>(topology.max_degree()), 20.0 * mean_degree);
}

TEST(TopologyGenTest, TierStructureHolds) {
  const TopologyParams params{.as_count = 800, .tier1_count = 6};
  const GeneratedTopology topology = generate_topology(params, 11);
  EXPECT_EQ(topology.count_in_tier(Tier::kTier1), 6u);
  EXPECT_GT(topology.count_in_tier(Tier::kTransit), 0u);
  EXPECT_GT(topology.count_in_tier(Tier::kStub), 0u);

  // Tier-1 clique: mutual settlement-free peers.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      const auto rel = topology.graph.relationship(
          params.asn_base + static_cast<bgp::AsNumber>(i),
          params.asn_base + static_cast<bgp::AsNumber>(j));
      ASSERT_TRUE(rel.has_value());
      EXPECT_EQ(*rel, bgp::Relationship::kPeer);
    }
  }
  // Stubs sell no transit: no customers anywhere.
  for (const auto& [asn, tier] : topology.tiers) {
    if (tier == Tier::kStub) {
      EXPECT_TRUE(topology.graph.customers_of(asn).empty())
          << "stub " << asn << " has customers";
    }
  }
}

TEST(TopologyGenTest, NeighborhoodsAreDisjointAndQualified) {
  const GeneratedTopology topology =
      generate_topology({.as_count = 1000}, 3);
  const std::vector<Neighborhood> hoods =
      select_neighborhoods(topology, 8, 4, 5);
  ASSERT_GE(hoods.size(), 4u);

  std::set<bgp::AsNumber> used;
  for (const Neighborhood& hood : hoods) {
    EXPECT_GE(hood.providers.size(), 4u);
    EXPECT_LE(hood.providers.size(), 5u);
    // The recipient must be the prover's customer.
    const auto rel = topology.graph.relationship(hood.prover, hood.recipient);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(*rel, bgp::Relationship::kCustomer);
    for (const bgp::AsNumber member : hood.members()) {
      EXPECT_TRUE(used.insert(member).second)
          << "AS " << member << " appears in two neighborhoods";
    }
  }
}

TEST(TopologyGenTest, RejectsBadParams) {
  EXPECT_THROW(generate_topology({.as_count = 3, .tier1_count = 5}, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_topology({.as_count = 10, .tier1_count = 0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pvr::scenario
