// Trace record → replay determinism (DESIGN.md §13): a scenario run that
// records its delivery trace must (a) be unperturbed by the recording,
// (b) replay through scenario::replay_trace to a byte-identical report
// fingerprint at EVERY engine worker count, and (c) survive a full
// serialize → deserialize round trip of the trace. This is the bridge that
// makes the wall-clock socket backend auditable: any backend that can
// produce a MessageTrace can be re-verified deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "net/message_trace.h"
#include "scenario/replay.h"
#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec replay_spec(const std::string& adversary,
                                       std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "trace_replay_" + adversary;
  spec.seed = seed;
  spec.adversary = adversary;
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 60;
  spec.attacked_fraction = 0.5;
  spec.traffic.mean_interarrival_us = 2000;
  // Coalescing on: replay must reproduce aggregated-window traffic too.
  spec.batch_deadline = 10'000;
  return spec;
}

class TraceReplayTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceReplayTest, ReplayMatchesRecordedFingerprintAtEveryWorkerCount) {
  const std::string adversary = GetParam();
  const ScenarioSpec spec = replay_spec(adversary, 77);

  const ScenarioReport baseline = run_scenario(spec);

  net::MessageTrace trace;
  const ScenarioReport recorded = run_scenario(spec, &trace);
  // Recording is observation only — it must not perturb the run.
  EXPECT_EQ(recorded.fingerprint(), baseline.fingerprint());
  EXPECT_EQ(recorded.evidence_digest, baseline.evidence_digest);
  ASSERT_FALSE(trace.entries.empty());
  EXPECT_EQ(trace.scenario, spec.name);
  EXPECT_EQ(trace.seed, spec.seed);
  EXPECT_EQ(trace.backend, "sim");
  EXPECT_EQ(trace.stats.messages_delivered, trace.entries.size());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const ScenarioReport replayed = replay_trace(spec, trace, workers);
    EXPECT_EQ(replayed.fingerprint(), baseline.fingerprint())
        << adversary << " replay at " << workers << " workers";
    // Offline verification applies evidence in arrival order on both
    // sides, so the order-pinning digest must match too — a strictly
    // stronger claim than the fingerprint's counts.
    EXPECT_EQ(replayed.evidence_digest, baseline.evidence_digest)
        << adversary << " replay at " << workers << " workers";
    EXPECT_EQ(replayed.verify_failures, 0u);
  }
}

TEST_P(TraceReplayTest, TraceSurvivesCodecRoundTrip) {
  const std::string adversary = GetParam();
  const ScenarioSpec spec = replay_spec(adversary, 101);

  net::MessageTrace trace;
  const ScenarioReport recorded = run_scenario(spec, &trace);

  const std::vector<std::uint8_t> wire = trace.encode();
  const net::MessageTrace decoded = net::MessageTrace::decode(wire);
  ASSERT_EQ(decoded.entries.size(), trace.entries.size());
  EXPECT_EQ(decoded.scenario, trace.scenario);
  EXPECT_EQ(decoded.seed, trace.seed);
  EXPECT_EQ(decoded.backend, trace.backend);
  EXPECT_EQ(decoded.stats.bytes_sent, trace.stats.bytes_sent);
  EXPECT_EQ(decoded.provers.size(), trace.provers.size());

  const ScenarioReport replayed = replay_trace(spec, decoded, 2);
  EXPECT_EQ(replayed.fingerprint(), recorded.fingerprint());
  EXPECT_EQ(replayed.evidence_digest, recorded.evidence_digest);
}

TEST(TraceReplayGuardTest, MismatchedIdentityIsRejected) {
  const ScenarioSpec spec = replay_spec("honest", 5);
  net::MessageTrace trace;
  (void)run_scenario(spec, &trace);

  ScenarioSpec other = spec;
  other.seed = 6;
  EXPECT_THROW((void)replay_trace(other, trace, 1), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Adversaries, TraceReplayTest,
                         ::testing::Values("equivocator", "delay_replay",
                                           "honest"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace pvr::scenario
