// The two obs determinism contracts, gated end-to-end through the scenario
// runner (DESIGN.md §11):
//
//  1. SIM-domain metrics are pure functions of the spec: the global
//     registry's sim_fingerprint() — and the settle-latency quantiles the
//     bench gate regresses on — must be byte-identical at 1/2/8 engine
//     workers.
//
//  2. Instrumentation never perturbs the system under test: the report
//     fingerprint must be byte-identical with tracing armed or idle, and
//     must equal the golden constant below, which the obs-ON and obs-OFF
//     CI builds BOTH assert — the cross-build half of the ON==OFF parity
//     gate (no shared state between those builds, so a hook that leaked
//     into a DRBG or the simulated schedule breaks one of them).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

// Fixed spec for the golden/determinism runs: online mode so the settle
// pipeline (the part the obs wiring instruments hardest) is exercised.
// Every field pinned — the golden fingerprint below is a function of this.
[[nodiscard]] ScenarioSpec golden_spec() {
  ScenarioSpec spec;
  spec.name = "obs_golden";
  spec.seed = 21;
  spec.adversary = "equivocator";
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 16;
  spec.attacked_fraction = 0.5;
  spec.traffic.mean_interarrival_us = 2000;
  spec.batch_deadline = 10'000;
  spec.workers = 2;
  spec.online = true;
  return spec;
}

// The report fingerprint of golden_spec(), pinned. Regenerate (and review
// the diff as a behavior change!) with:
//   run_scenario(golden_spec()).fingerprint()
constexpr char kGoldenFingerprint[] =
    "obs_golden|equivocator|seed=21|ases=400|hoods=2|nodes=12|started=16|"
    "windows=9|coalesced=1|attacked=8|detected=8|evidence=96|false=0|"
    "audit_fail=0|in=12064|bundle=64435|gossip=204630|reveal=29640|"
    "total=310769|gossip_msgs=490";

TEST(ObsDeterminismTest, SimMetricsIdenticalAcrossWorkerCounts) {
  std::string fingerprint_at_1;
  std::uint64_t p50_at_1 = 0;
  std::uint64_t p99_at_1 = 0;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ScenarioSpec spec = golden_spec();
    spec.workers = workers;
    obs::MetricsRegistry::global().reset();
    const ScenarioReport report = run_scenario(spec);
    const std::string sim_metrics =
        obs::MetricsRegistry::global().snapshot().sim_fingerprint();

    if (workers == 1) {
      fingerprint_at_1 = sim_metrics;
      p50_at_1 = report.p50_settle_us;
      p99_at_1 = report.p99_settle_us;
      if (obs::kCompiledIn) {
        // Sanity that the fingerprint is live, not a vacuous all-zeros
        // match: the run must have counted RSA work and settle latencies.
        // (rsa_signs, not rsa_verifies: verify exponentiations are kSched
        // since the world verdict cache made their count schedule-shaped.)
        EXPECT_NE(sim_metrics.find("crypto.rsa_signs="), std::string::npos);
        EXPECT_EQ(sim_metrics.find("crypto.rsa_signs=0|"),
                  std::string::npos);
        EXPECT_EQ(sim_metrics.find("scenario.settle_us=[]"),
                  std::string::npos);
      }
      // Online runs settle rounds strictly after their windows close, so
      // the quantiles are nonzero in either build flavor (the runner
      // aggregates through a local histogram, not the global registry).
      EXPECT_GT(p50_at_1, 0u);
      EXPECT_GE(p99_at_1, p50_at_1);
    } else {
      EXPECT_EQ(sim_metrics, fingerprint_at_1)
          << "sim metrics diverged at " << workers << " workers";
      EXPECT_EQ(report.p50_settle_us, p50_at_1) << workers << " workers";
      EXPECT_EQ(report.p99_settle_us, p99_at_1) << workers << " workers";
    }
  }
}

TEST(ObsDeterminismTest, TracingDoesNotPerturbTheRun) {
  const ScenarioReport quiet = run_scenario(golden_spec());

  const std::string path = ::testing::TempDir() + "obs_parity_trace.json";
  obs::TraceWriter& tracer = obs::TraceWriter::global();
  ASSERT_EQ(tracer.open(path), obs::kCompiledIn);
  const ScenarioReport traced = run_scenario(golden_spec());
  if (obs::kCompiledIn) {
    EXPECT_GT(tracer.event_count(), 0u);  // capture actually saw the run
  }
  tracer.close();
  std::remove(path.c_str());

  EXPECT_EQ(traced.fingerprint(), quiet.fingerprint());
}

// Both CI build flavors (-DPVR_OBS=ON and OFF) assert this exact constant:
// transitively, the two flavors agree with each other byte-for-byte.
TEST(ObsDeterminismTest, GoldenFingerprintHoldsAcrossWorkersAndDrains) {
  for (const std::size_t workers : {2u, 8u}) {
    for (const net::SimTime drain_us : {net::SimTime{7'000},
                                        net::SimTime{64'000}}) {
      ScenarioSpec spec = golden_spec();
      spec.workers = workers;
      spec.drain_interval_us = drain_us;
      const ScenarioReport report = run_scenario(spec);
      EXPECT_EQ(report.fingerprint(), kGoldenFingerprint)
          << "workers=" << workers << " drain_interval_us=" << drain_us;
    }
  }
}

}  // namespace
}  // namespace pvr::scenario
