// TraceWriter/TraceSpan contracts: inactive capture is a no-op, close()
// writes parseable Chrome trace JSON, spans nest across threads (the TSan
// leg runs this binary), a capture closed mid-span drops the span instead
// of corrupting the buffer, and the event cap degrades to counting drops.
//
// Tests that need an armed capture use the GLOBAL writer (TraceSpan is
// hard-wired to it) and close it before returning so no capture leaks into
// the scenario-level tests in this binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace pvr::obs {
namespace {

[[nodiscard]] std::string temp_path(const char* leaf) {
  return ::testing::TempDir() + leaf;
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceWriterTest, InactiveWriterDropsEverything) {
  TraceWriter writer;
  EXPECT_FALSE(writer.active());
  EXPECT_EQ(writer.wall_now_us(), 0u);
  writer.complete("x", "test", Track::kWall, 0, 0, 1);
  writer.instant("y", "test", Track::kSim, 0, 0);
  writer.sim_span("z", 0, 0, 5);
  EXPECT_EQ(writer.event_count(), 0u);
  // Closing an inactive writer is a benign no-op when compiled in; the
  // OFF flavor reports false from both open() and close() uniformly.
  EXPECT_EQ(writer.close(), kCompiledIn);
}

TEST(TraceWriterTest, OpenArmsOnlyWhenCompiledIn) {
  TraceWriter writer;
  EXPECT_EQ(writer.open(temp_path("obs_open_test.json")), kCompiledIn);
  EXPECT_EQ(writer.active(), kCompiledIn);
  writer.close();
}

TEST(TraceWriterTest, CloseWritesParseableChromeTraceJson) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out (-DPVR_OBS=OFF)";
  const std::string path = temp_path("obs_trace_shape.json");
  TraceWriter writer;
  ASSERT_TRUE(writer.open(path));
  writer.complete("engine.task", "engine", Track::kWall, 3, 10, 25,
                  "{\"epoch\":7}");
  writer.instant("window.close", "sim", Track::kSim, 42, 1000);
  writer.sim_span("round.settle", 2, 1000, 4000);
  static const char kQuoted[] = "quo\"te";
  writer.instant(kQuoted, "test", Track::kSim, 0, 1);
  EXPECT_EQ(writer.event_count(), 4u);
  ASSERT_TRUE(writer.close());
  EXPECT_FALSE(writer.active());
  EXPECT_EQ(writer.event_count(), 0u);  // buffer handed to the file

  const std::string json = slurp(path);
  // Chrome trace-event envelope plus the two clock-domain process rows.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"wall-clock\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"sim-time\"}"), std::string::npos);
  // Complete event: phase X on pid 1 with a duration and passthrough args.
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":10,"
                      "\"dur\":25"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"epoch\":7}"), std::string::npos);
  // Instant event: phase i on pid 2, thread-scoped.
  EXPECT_NE(json.find("\"ph\":\"i\",\"pid\":2,\"tid\":42,\"ts\":1000,"
                      "\"s\":\"t\""),
            std::string::npos);
  // sim_span computes the duration from the two sim timestamps.
  EXPECT_NE(json.find("\"ts\":1000,\"dur\":3000"), std::string::npos);
  // Names are JSON-escaped on the way out.
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_EQ(json.find("\"droppedEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriterTest, BufferCapCountsDropsInsteadOfGrowing) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out (-DPVR_OBS=OFF)";
  const std::string path = temp_path("obs_trace_cap.json");
  TraceWriter writer;
  ASSERT_TRUE(writer.open(path));
  for (std::size_t i = 0; i < TraceWriter::kMaxEvents + 10; ++i) {
    writer.instant("tick", "test", Track::kSim, 0, i);
  }
  EXPECT_EQ(writer.event_count(), TraceWriter::kMaxEvents);
  EXPECT_EQ(writer.dropped_events(), 10u);
  ASSERT_TRUE(writer.close());
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"droppedEvents\":10"), std::string::npos);
  std::remove(path.c_str());
}

// The shape the engine worker pool produces: nested spans from several
// threads at once, all appending to the shared global writer. TSan runs
// this binary, so a data race in the append path fails here.
TEST(TraceSpanTest, SpansNestAcrossThreads) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out (-DPVR_OBS=OFF)";
  const std::string path = temp_path("obs_trace_threads.json");
  TraceWriter& writer = TraceWriter::global();
  ASSERT_TRUE(writer.open(path));

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        const TraceSpan outer("outer", "test");
        const TraceSpan inner("inner", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(writer.event_count(),
            static_cast<std::size_t>(kThreads) * kIters * 2);
  ASSERT_TRUE(writer.close());
  std::remove(path.c_str());
}

TEST(TraceSpanTest, SpanOutlivingCaptureIsDropped) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out (-DPVR_OBS=OFF)";
  const std::string path = temp_path("obs_trace_midclose.json");
  TraceWriter& writer = TraceWriter::global();
  ASSERT_TRUE(writer.open(path));
  {
    const TraceSpan span("straddler", "test");
    ASSERT_TRUE(writer.close());
    // Destructor runs here with capture disarmed: the span must vanish
    // without reviving the buffer.
  }
  EXPECT_FALSE(writer.active());
  EXPECT_EQ(writer.event_count(), 0u);
  std::remove(path.c_str());
}

TEST(TraceSpanTest, SpanWithoutCaptureIsNoOp) {
  ASSERT_FALSE(TraceWriter::global().active());
  const TraceSpan span("idle", "test");
  EXPECT_EQ(TraceWriter::global().event_count(), 0u);
}

}  // namespace
}  // namespace pvr::obs
