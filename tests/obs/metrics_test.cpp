// The metrics layer's two contracts: order-independence (the same multiset
// of recordings from any thread interleaving reaches identical state — the
// property that makes SIM-domain metrics deterministic at any worker
// count) and stable export (fixed bucket layout, canonical fingerprint,
// flat JSON fields).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pvr::obs {
namespace {

TEST(HistogramTest, BucketLayoutIsFixedPowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(HistogramTest, QuantileReportsCoveringBucketUpperEdge) {
  Histogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 99; ++i) hist.record(5);   // bucket 3: [4, 8)
  hist.record(1000);                             // bucket 10: [512, 1024)
  EXPECT_EQ(hist.quantile(0.5), 7u);    // upper edge of [4, 8)
  EXPECT_EQ(hist.quantile(0.99), 7u);   // rank 99 still in bucket 3
  EXPECT_EQ(hist.quantile(1.0), 1023u); // the outlier's bucket edge
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 99u * 5 + 1000);
}

TEST(HistogramTest, SnapshotTrimsTrailingEmptyBuckets) {
  Histogram hist;
  hist.record(0);
  hist.record(6);
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // buckets 0..3, bucket 3 last nonzero
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snapshot_quantile(snap, 0.5), 0u);
  EXPECT_EQ(snapshot_quantile(snap, 1.0), 7u);
}

// The determinism property the scenario gates lean on: the recorded
// MULTISET fixes the state — recording order and thread assignment do not.
TEST(HistogramTest, StateIsOrderAndThreadIndependent) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 4096; ++i) values.push_back(i * 37 % 2048);

  Histogram forward;
  for (const std::uint64_t value : values) forward.record(value);

  Histogram reversed;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    reversed.record(*it);
  }

  Histogram threaded;
  {
    std::vector<std::thread> threads;
    const std::size_t per_thread = values.size() / 8;
    for (std::size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&threaded, &values, t, per_thread] {
        for (std::size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
          threaded.record(values[i]);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  EXPECT_EQ(forward.snapshot(), reversed.snapshot());
  EXPECT_EQ(forward.snapshot(), threaded.snapshot());
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 80000u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(RegistryTest, NamedLookupsReturnStableReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.counter");
  counter.add(3);
  EXPECT_EQ(&registry.counter("test.counter"), &counter);
  registry.reset();
  EXPECT_EQ(&registry.counter("test.counter"), &counter);  // reset keeps refs
  EXPECT_EQ(counter.value(), 0u);
}

TEST(RegistryTest, SimFingerprintCoversSimSectionOnly) {
  MetricsRegistry registry;
  registry.hot.crypto_rsa_signs.add(7);
  registry.hot.scenario_settle_us.record(100);
  const std::string base = registry.snapshot().sim_fingerprint();
  EXPECT_NE(base.find("crypto.rsa_signs=7"), std::string::npos);
  EXPECT_NE(base.find("scenario.settle_us="), std::string::npos);
  EXPECT_EQ(base.find("engine.task_us"), std::string::npos);  // WALL domain

  // Sched-domain counts (rsa_verifies went kSched with the world verdict
  // cache — WHICH duplicate hits is a worker race) and wall-domain
  // recordings must not move the deterministic fingerprint.
  registry.hot.crypto_rsa_verifies.add(7);
  registry.hot.crypto_world_cache_hits.add(3);
  registry.hot.engine_task_us.record(12345);
  EXPECT_EQ(registry.snapshot().sim_fingerprint(), base);
}

TEST(RegistryTest, JsonFieldsSplitWallSection) {
  MetricsRegistry registry;
  registry.hot.sim_events.add(2);
  registry.hot.engine_task_us.record(9);
  const std::string json = registry.snapshot().to_json_fields();
  EXPECT_NE(json.find("\"sim_events\":2"), std::string::npos);
  EXPECT_NE(json.find("\"wall_engine_task_us_count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"wall_engine_task_us_p50\":15"), std::string::npos);
  // The body must drop into a JSON object verbatim: bare key-value pairs,
  // no braces of its own.
  EXPECT_EQ(json.find('{'), std::string::npos);
  EXPECT_EQ(json.find('}'), std::string::npos);
}

TEST(RegistryTest, GlobalRegistryHooksRecordWhenCompiledIn) {
  MetricsRegistry& global = MetricsRegistry::global();
  const std::uint64_t before = global.hot.crypto_mulmod_calls.value();
  PVR_OBS_COUNT(crypto_mulmod_calls, 5);
  const std::uint64_t expected = kCompiledIn ? before + 5 : before;
  EXPECT_EQ(global.hot.crypto_mulmod_calls.value(), expected);
}

}  // namespace
}  // namespace pvr::obs
