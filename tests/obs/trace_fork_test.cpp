// TraceWriter fork safety (DESIGN.md §14): a child inheriting an armed
// writer must not rewrite its parent's trace file. Its first record (or
// close) in the new pid drops the inherited buffer and retargets the
// capture to `<base>.<pid>.json` — the per-process shard contract
// merge_traces() builds on.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace pvr::obs {
namespace {

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TraceForkTest, ChildRetargetsShardAndDropsInheritedEvents) {
  if constexpr (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const std::string base = ::testing::TempDir() + "fork_trace.json";
  TraceWriter& writer = TraceWriter::global();
  ASSERT_TRUE(writer.open(base));
  // Buffered before the fork: the child inherits it and must NOT write it.
  writer.sim_instant("parent.marker", 0, 1);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: the writer is still armed with the parent's path and
    // buffer. One record + close must land in the pid-suffixed shard.
    writer.sim_instant("child.marker", 0, 2);
    ::_exit(writer.close() ? 0 : 1);
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The parent's capture is untouched by the child's close.
  ASSERT_TRUE(writer.active());
  EXPECT_TRUE(writer.close());

  const std::string parent_json = read_file(base);
  EXPECT_NE(parent_json.find("parent.marker"), std::string::npos);
  EXPECT_EQ(parent_json.find("child.marker"), std::string::npos);

  const std::string child_path = ::testing::TempDir() + "fork_trace." +
                                 std::to_string(child) + ".json";
  const std::string child_json = read_file(child_path);
  ASSERT_FALSE(child_json.empty()) << "child shard missing: " << child_path;
  EXPECT_NE(child_json.find("child.marker"), std::string::npos);
  EXPECT_EQ(child_json.find("parent.marker"), std::string::npos);
}

}  // namespace
}  // namespace pvr::obs
