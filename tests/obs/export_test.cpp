// The cross-process export contracts (DESIGN.md §14): the snapshot wire
// codec round-trips exactly, merge() is the commutative/associative shard
// sum the conductor relies on, version or domain skew fails loudly, and
// merge_traces() stitches per-process shards with flow ids intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace pvr::obs {
namespace {

[[nodiscard]] bool snapshots_equal(const MetricsSnapshot& a,
                                   const MetricsSnapshot& b) {
  if (a.scalars.size() != b.scalars.size() ||
      a.histograms.size() != b.histograms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.scalars.size(); ++i) {
    if (a.scalars[i].name != b.scalars[i].name ||
        a.scalars[i].domain != b.scalars[i].domain ||
        a.scalars[i].value != b.scalars[i].value) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    if (a.histograms[i].name != b.histograms[i].name ||
        a.histograms[i].domain != b.histograms[i].domain ||
        !(a.histograms[i].hist == b.histograms[i].hist)) {
      return false;
    }
  }
  return true;
}

// A populated registry snapshot exercising scalars, histograms, every
// domain, and named (non-hot) metrics.
[[nodiscard]] MetricsSnapshot sample_snapshot(std::uint64_t scale) {
  MetricsRegistry registry;
  registry.hot.crypto_rsa_verifies.add(7 * scale);
  registry.hot.sim_messages.add(3 * scale);
  registry.hot.engine_drains.add(scale);  // kSched
  for (std::uint64_t i = 0; i < scale; ++i) {
    registry.hot.scenario_settle_us.record(100 * (i + 1));
    registry.hot.engine_task_us.record(i);  // kWall
  }
  registry.counter("test.named", Domain::kSim).add(11 * scale);
  registry.histogram("test.named_us", Domain::kWall).record(scale);
  return registry.snapshot();
}

TEST(SnapshotCodecTest, RoundTripIdentity) {
  const MetricsSnapshot original = sample_snapshot(5);
  const std::vector<std::uint8_t> wire = original.encode();
  const MetricsSnapshot decoded = MetricsSnapshot::decode(wire);
  EXPECT_TRUE(snapshots_equal(original, decoded));
  EXPECT_EQ(original.sim_fingerprint(), decoded.sim_fingerprint());
  EXPECT_EQ(original.to_json_fields(), decoded.to_json_fields());
}

TEST(SnapshotCodecTest, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  const MetricsSnapshot decoded = MetricsSnapshot::decode(empty.encode());
  EXPECT_TRUE(decoded.scalars.empty());
  EXPECT_TRUE(decoded.histograms.empty());
  EXPECT_EQ(decoded.sim_fingerprint(), "");
}

TEST(SnapshotCodecTest, VersionMismatchRejected) {
  std::vector<std::uint8_t> wire = sample_snapshot(1).encode();
  wire[0] = 0xFF;  // clobber the big-endian version field
  EXPECT_THROW((void)MetricsSnapshot::decode(wire), std::invalid_argument);
}

TEST(SnapshotCodecTest, TruncatedInputRejected) {
  std::vector<std::uint8_t> wire = sample_snapshot(2).encode();
  wire.resize(wire.size() / 2);
  EXPECT_THROW((void)MetricsSnapshot::decode(wire), std::out_of_range);
}

TEST(SnapshotCodecTest, BadDomainByteRejected) {
  MetricsSnapshot snapshot;
  snapshot.scalars.push_back({.name = "x", .domain = Domain::kSim, .value = 1});
  std::vector<std::uint8_t> wire = snapshot.encode();
  // The domain byte of the single entry sits right after the name bytes:
  // [u16 ver][u32 n][u32 len]["x"][u8 domain]...
  wire[2 + 4 + 4 + 1] = 0x7F;
  EXPECT_THROW((void)MetricsSnapshot::decode(wire), std::invalid_argument);
}

TEST(SnapshotMergeTest, MergeIsCommutative) {
  MetricsSnapshot ab = sample_snapshot(2);
  ab.merge(sample_snapshot(3));
  MetricsSnapshot ba = sample_snapshot(3);
  ba.merge(sample_snapshot(2));
  EXPECT_TRUE(snapshots_equal(ab, ba));
  EXPECT_EQ(ab.sim_fingerprint(), ba.sim_fingerprint());
}

TEST(SnapshotMergeTest, MergeIsAssociative) {
  MetricsSnapshot left = sample_snapshot(1);
  left.merge(sample_snapshot(2));
  left.merge(sample_snapshot(4));
  MetricsSnapshot bc = sample_snapshot(2);
  bc.merge(sample_snapshot(4));
  MetricsSnapshot right = sample_snapshot(1);
  right.merge(bc);
  EXPECT_TRUE(snapshots_equal(left, right));
}

TEST(SnapshotMergeTest, MergeAddsValuesAndBuckets) {
  MetricsSnapshot merged = sample_snapshot(2);
  merged.merge(sample_snapshot(3));
  const MetricsSnapshot expected = sample_snapshot(5);
  // Counters add exactly; the settle histogram recorded different value
  // multisets (100..200 vs 100..300), so only total count/sum-style
  // invariants hold there — check the pure counters against the scale-5
  // registry instead.
  for (const auto& entry : expected.scalars) {
    for (const auto& got : merged.scalars) {
      if (got.name == entry.name) {
        EXPECT_EQ(got.value, entry.value) << entry.name;
      }
    }
  }
}

TEST(SnapshotMergeTest, MergeWithEmptyIsIdentity) {
  MetricsSnapshot merged = sample_snapshot(4);
  merged.merge(MetricsSnapshot{});
  EXPECT_TRUE(snapshots_equal(merged, sample_snapshot(4)));
  MetricsSnapshot from_empty;
  from_empty.merge(sample_snapshot(4));
  EXPECT_TRUE(snapshots_equal(from_empty, sample_snapshot(4)));
}

TEST(SnapshotMergeTest, DomainConflictThrows) {
  MetricsSnapshot a;
  a.scalars.push_back({.name = "x", .domain = Domain::kSim, .value = 1});
  MetricsSnapshot b;
  b.scalars.push_back({.name = "x", .domain = Domain::kWall, .value = 1});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(SnapshotDeltaTest, DeltaSubtractsBaseline) {
  const MetricsSnapshot earlier = sample_snapshot(2);
  const MetricsSnapshot later = sample_snapshot(5);
  const MetricsSnapshot diff = MetricsSnapshot::delta(later, earlier);
  for (const auto& entry : diff.scalars) {
    for (const auto& was : earlier.scalars) {
      if (was.name != entry.name) continue;
      for (const auto& now : later.scalars) {
        if (now.name == entry.name) {
          EXPECT_EQ(entry.value, now.value - was.value) << entry.name;
        }
      }
    }
  }
  // Deltaing a snapshot against itself zeroes everything.
  const MetricsSnapshot zero = MetricsSnapshot::delta(earlier, earlier);
  for (const auto& entry : zero.scalars) EXPECT_EQ(entry.value, 0u);
  for (const auto& entry : zero.histograms) {
    EXPECT_EQ(entry.hist.count, 0u);
    EXPECT_TRUE(entry.hist.counts.empty());
  }
}

TEST(SnapshotDeltaTest, SchedDomainSurvivesMergeButNotFingerprint) {
  // engine.drains is kSched: each shard reports its own drain, the merge
  // sums them, and the sim fingerprint ignores the sum — the exact
  // property that lets N-process runs fingerprint-match 1-process runs.
  MetricsSnapshot merged = sample_snapshot(1);
  merged.merge(sample_snapshot(1));
  bool found = false;
  for (const auto& entry : merged.scalars) {
    if (entry.name == "engine.drains") {
      found = true;
      EXPECT_EQ(entry.domain, Domain::kSched);
      EXPECT_EQ(entry.value, 2u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(merged.sim_fingerprint().find("engine.drains"), std::string::npos);
  // ...but the JSON export still carries it, unprefixed, so the
  // obs_snapshot row shape is unchanged.
  EXPECT_NE(merged.to_json_fields().find("\"engine_drains\":2"),
            std::string::npos);
}

TEST(StatsSampleTest, RoundTripsThroughWire) {
  StatsSample sample;
  sample.rank = 3;
  sample.at_us = 123456;
  sample.open_rounds = 17;
  sample.peak_open_rounds = 42;
  sample.messages_sent = 1000;
  sample.messages_delivered = 990;
  sample.messages_dropped = 10;
  sample.bytes_sent = 65536;
  sample.metrics = sample_snapshot(2);
  const StatsSample decoded = StatsSample::decode(sample.encode());
  EXPECT_EQ(decoded.rank, 3u);
  EXPECT_EQ(decoded.at_us, 123456u);
  EXPECT_EQ(decoded.open_rounds, 17);
  EXPECT_EQ(decoded.peak_open_rounds, 42);
  EXPECT_EQ(decoded.messages_sent, 1000u);
  EXPECT_EQ(decoded.messages_delivered, 990u);
  EXPECT_EQ(decoded.messages_dropped, 10u);
  EXPECT_EQ(decoded.bytes_sent, 65536u);
  EXPECT_TRUE(snapshots_equal(decoded.metrics, sample.metrics));
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while (file != nullptr && (n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out.append(buf, n);
  }
  if (file != nullptr) std::fclose(file);
  return out;
}

TEST(MergeTracesTest, StitchesShardsOntoPerProcessTracks) {
  if constexpr (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceWriter& writer = TraceWriter::global();

  // Shard 0: a span plus the sending half of a flow.
  ASSERT_TRUE(writer.open("merge_test_a.json"));
  writer.complete("work", "test", Track::kWall, 1, 10, 5);
  writer.flow('s', "msg.flow", "flow", Track::kSim, 7, 20, 0xABCD);
  ASSERT_TRUE(writer.close());

  // Shard 1: the receiving half of the same flow id.
  ASSERT_TRUE(writer.open("merge_test_b.json"));
  writer.flow('f', "msg.flow", "flow", Track::kSim, 9, 30, 0xABCD);
  ASSERT_TRUE(writer.close());

  const std::size_t merged = merge_traces(
      {{.path = "merge_test_a.json", .label = "proc0"},
       {.path = "merge_test_b.json", .label = "proc1"}},
      "merge_test_out.json");
  EXPECT_EQ(merged, 3u);

  const std::string out = slurp("merge_test_out.json");
  // Shard 0's tracks land on pids 1/2, shard 1's sim track on pid 12.
  EXPECT_NE(out.find("\"args\":{\"name\":\"proc0/wall-clock\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"name\":\"proc1/sim-time\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
  // Both halves of the flow still carry the same id after the pid remap.
  const std::uint64_t id = 0xABCD;
  std::size_t id_count = 0;
  const std::string needle = "\"id\":" + std::to_string(id);
  for (std::size_t at = out.find(needle); at != std::string::npos;
       at = out.find(needle, at + 1)) {
    ++id_count;
  }
  EXPECT_EQ(id_count, 2u);
  std::remove("merge_test_a.json");
  std::remove("merge_test_b.json");
  std::remove("merge_test_out.json");
}

TEST(MergeTracesTest, MissingShardThrows) {
  EXPECT_THROW((void)merge_traces({{.path = "does_not_exist_12345.json",
                                    .label = "x"}},
                                  "unused.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace pvr::obs
