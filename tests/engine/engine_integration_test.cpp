// Engine-backed finalize over the lossy-network scenarios: the parallel
// engine must reproduce the sequential finalize_round verdicts exactly,
// byte for byte, under message loss, equivocation, and duplicate delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "engine/verification_engine.h"

namespace pvr::engine {
namespace {

using core::Evidence;
using core::Figure1Handles;
using core::Figure1Setup;
using core::Figure1World;
using core::ViolationKind;

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                                   const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// Runs the equivocating-prover round over a degraded verifier mesh (the
// scenario from tests/integration/lossy_network_test.cpp) and returns the
// world, quiesced and ready to finalize.
[[nodiscard]] Figure1Handles run_lossy_equivocation_world() {
  Figure1Setup setup{.seed = 32, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  Figure1Handles handles = core::make_figure1_world(setup);
  Figure1World& world = *handles.world;

  // Reduce the verifier mesh to a line: N1-N2-N3-N4-B.
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (std::size_t i = 0; i < verifiers.size(); ++i) {
    for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
      if (j != i + 1) world.sim.disconnect(verifiers[i], verifiers[j]);
    }
  }

  world.sim.schedule(0, [&world, &handles] {
    const std::vector<std::size_t> lengths = {3, 4, 5, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i],
                                   handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();
  return handles;
}

[[nodiscard]] std::string evidence_fingerprint(const std::vector<Evidence>& log) {
  std::string out;
  for (const Evidence& item : log) {
    out += item.to_string() + "\n";
    for (const core::SignedMessage& message : item.messages) {
      out += crypto::to_hex(message.encode()) + "\n";
    }
  }
  return out;
}

TEST(EngineIntegrationTest, MatchesSequentialFinalizeUnderEquivocation) {
  // Two identical worlds (same seed => byte-identical message history):
  // one finalized sequentially, one through the 8-worker engine.
  Figure1Handles sequential = run_lossy_equivocation_world();
  Figure1Handles engined = run_lossy_equivocation_world();

  std::vector<bgp::AsNumber> verifiers = sequential.world->providers;
  verifiers.push_back(sequential.world->recipient);

  for (const bgp::AsNumber verifier : verifiers) {
    sequential.world->node(verifier).finalize_round(sequential.round_id(1));
  }

  VerificationEngine engine({.workers = 8},
                            &engined.keys->directory);
  for (const bgp::AsNumber verifier : verifiers) {
    EXPECT_TRUE(engine.submit_node_round(engined.world->node(verifier), engined.round_id(1)));
  }
  const EngineReport report = engine.drain();
  EXPECT_EQ(report.rounds, verifiers.size());

  // Every verifier's evidence log must be byte-identical to the sequential
  // run's.
  for (const bgp::AsNumber verifier : verifiers) {
    EXPECT_EQ(
        evidence_fingerprint(engined.world->node(verifier).evidence()),
        evidence_fingerprint(sequential.world->node(verifier).evidence()))
        << "verifier " << verifier;
    EXPECT_FALSE(engined.world->node(verifier).evidence().empty());
  }

  // The sink aggregates everything the nodes saw, with per-class counters.
  EXPECT_EQ(engine.sink().total(), report.violations);
  EXPECT_GT(engine.sink().count(ViolationKind::kEquivocation), 0u);

  // Equivocation evidence is third-party provable: the auditor accepts it.
  const core::Auditor auditor(&engined.keys->directory);
  EXPECT_GT(engine.sink().validate_all(auditor), 0u);
}

TEST(EngineIntegrationTest, TotalLossYieldsOnlyLivenessFindings) {
  // The total-loss scenario: links severed after inputs, so bundle and
  // reveals never arrive; the engine path must report the same
  // non-provable liveness faults as sequential finalize.
  Figure1Handles handles = core::make_figure1_world({.seed = 31});
  Figure1World& world = *handles.world;

  world.sim.schedule(0, [&world, &handles] {
    const std::vector<std::size_t> lengths = {4, 2, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i],
                                   handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.schedule(5'000, [&world] {
    for (const bgp::AsNumber provider : world.providers) {
      world.sim.disconnect(world.prover, provider);
    }
    world.sim.disconnect(world.prover, world.recipient);
  });
  try {
    world.sim.run();
  } catch (const std::logic_error&) {
    // expected: the prover sent on a severed link
  }

  VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  for (const bgp::AsNumber provider : world.providers) {
    EXPECT_TRUE(engine.submit_node_round(world.node(provider), handles.round_id(1)));
  }
  (void)engine.drain();

  const core::Auditor auditor(&handles.keys->directory);
  for (const bgp::AsNumber provider : world.providers) {
    const auto& evidence = world.node(provider).evidence();
    ASSERT_FALSE(evidence.empty());
    for (const Evidence& item : evidence) {
      EXPECT_EQ(item.kind, ViolationKind::kMissingReveal);
      EXPECT_FALSE(auditor.validate(item));
    }
  }
  EXPECT_EQ(engine.sink().count(ViolationKind::kMissingReveal),
            engine.sink().total());
}

TEST(EngineIntegrationTest, FailedRoundDoesNotCorruptNextBatch) {
  core::AsKeyPairs keys;
  crypto::Drbg key_rng(5, "engine-error-test");
  keys = core::generate_keys({1}, key_rng, 512);
  VerificationEngine engine({.workers = 2}, &keys.directory);

  const core::ProtocolId id{.prover = 1,
                            .prefix = bgp::Ipv4Prefix::parse("10.0.0.0/24"),
                            .epoch = 1};
  engine.submit(id, [] { return core::RoundFindings{}; });
  engine.submit(id, []() -> core::RoundFindings {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW((void)engine.drain(), std::runtime_error);

  // After a failed batch the engine must still deliver the next batch's
  // findings correctly (tickets restart at 0; no stale owner state).
  engine.submit(id, [] {
    core::RoundFindings findings;
    findings.evidence.push_back(core::Evidence{
        .kind = core::ViolationKind::kBadOpening,
        .accused = 1,
        .reporter = 2,
        .index = 1,
        .messages = {},
        .detail = "post-error round"});
    return findings;
  });
  const EngineReport report = engine.drain();
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_EQ(engine.sink().count(core::ViolationKind::kBadOpening), 1u);
}

TEST(EngineIntegrationTest, DeferFinalizeIsIdempotent) {
  Figure1Handles handles = core::make_figure1_world({.seed = 33});
  Figure1World& world = *handles.world;
  world.sim.schedule(0, [&world, &handles] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(2 + i, world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  core::PvrNode& provider = world.node(world.providers[0]);
  VerificationEngine engine({.workers = 2}, &handles.keys->directory);
  EXPECT_TRUE(engine.submit_node_round(provider, handles.round_id(1)));
  // Second deferred submit and a direct finalize are both no-ops now.
  EXPECT_FALSE(engine.submit_node_round(provider, handles.round_id(1)));
  provider.finalize_round(handles.round_id(1));
  (void)engine.drain();
  EXPECT_TRUE(provider.evidence().empty());  // honest round, one evaluation

  // The deferred id carries the full round identity for sharding.
  core::PvrNode& other = world.node(world.providers[1]);
  const std::optional<core::DeferredRound> deferred =
      other.defer_finalize(handles.round_id(1));
  ASSERT_TRUE(deferred.has_value());
  EXPECT_EQ(deferred->id.prover, world.prover);
  EXPECT_EQ(deferred->id.prefix, handles.prefix);
  EXPECT_EQ(deferred->id.epoch, 1u);
  other.apply_round_findings(handles.round_id(1), deferred->work());
  EXPECT_TRUE(other.evidence().empty());
}

}  // namespace
}  // namespace pvr::engine
