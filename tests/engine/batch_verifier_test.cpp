#include "engine/batch_verifier.h"

#include <gtest/gtest.h>

#include "core/verify_context.h"
#include "crypto/rsa.h"

namespace pvr::engine {
namespace {

struct BatchWorld {
  core::AsKeyPairs keys;
  std::vector<core::SignedMessage> messages;
};

[[nodiscard]] BatchWorld make_world(std::size_t signers, std::size_t per_signer) {
  BatchWorld world;
  std::vector<bgp::AsNumber> asns;
  for (std::size_t i = 0; i < signers; ++i) {
    asns.push_back(100 + static_cast<bgp::AsNumber>(i));
  }
  crypto::Drbg rng(42, "batch-verifier-test");
  world.keys = core::generate_keys(asns, rng, 512);
  for (const bgp::AsNumber asn : asns) {
    for (std::size_t m = 0; m < per_signer; ++m) {
      std::vector<std::uint8_t> payload = rng.bytes(40 + m);
      world.messages.push_back(core::sign_message(
          asn, world.keys.private_keys.at(asn).priv, std::move(payload)));
    }
  }
  return world;
}

[[nodiscard]] std::vector<bool> reference_results(const BatchWorld& world) {
  std::vector<bool> expected;
  expected.reserve(world.messages.size());
  for (const core::SignedMessage& message : world.messages) {
    expected.push_back(core::verify_message(world.keys.directory, message));
  }
  return expected;
}

TEST(BatchVerifierTest, AllValidBatchMatchesPerMessage) {
  const BatchWorld world = make_world(3, 4);
  BatchVerifier verifier(&world.keys.directory);
  EXPECT_EQ(verifier.verify(world.messages), reference_results(world));
  EXPECT_EQ(verifier.stats().messages, 12u);
  EXPECT_EQ(verifier.stats().batches, 3u);  // one per signer
}

TEST(BatchVerifierTest, CorruptedMemberIsolatedExactly) {
  BatchWorld world = make_world(2, 5);
  // Corrupt one signature byte, one payload byte, and one signer id.
  world.messages[3].signature[10] ^= 0x40;
  world.messages[7].payload[0] ^= 0x01;
  world.messages[9].signer = 9999;  // unknown to the directory
  BatchVerifier verifier(&world.keys.directory);
  const std::vector<bool> results = verifier.verify(world.messages);
  const std::vector<bool> expected = reference_results(world);
  ASSERT_EQ(results, expected);
  EXPECT_FALSE(results[3]);
  EXPECT_FALSE(results[7]);
  EXPECT_FALSE(results[9]);
  // Everything else still verifies.
  for (const std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u, 8u}) {
    EXPECT_TRUE(results[i]) << "member " << i;
  }
}

TEST(BatchVerifierTest, EmptyAndTruncatedSignatures) {
  BatchWorld world = make_world(1, 3);
  world.messages[1].signature.clear();
  world.messages[2].signature.resize(17);
  BatchVerifier verifier(&world.keys.directory);
  EXPECT_EQ(verifier.verify(world.messages), reference_results(world));
}

// The VerifyContext constructor is the engine's path: same verdicts as the
// directory-compat constructor, shared context across verifiers.
TEST(BatchVerifierTest, SharedContextCtorMatchesDirectoryCtor) {
  BatchWorld world = make_world(3, 3);
  world.messages[4].signature[5] ^= 0x10;
  const core::VerifyContext ctx(&world.keys.directory,
                                /*cache_verdicts=*/false);
  BatchVerifier shared_a(&ctx);
  BatchVerifier shared_b(&ctx);
  BatchVerifier compat(&world.keys.directory);
  const std::vector<bool> expected = reference_results(world);
  EXPECT_EQ(shared_a.verify(world.messages), expected);
  EXPECT_EQ(shared_b.verify(world.messages), expected);
  EXPECT_EQ(compat.verify(world.messages), expected);
  EXPECT_EQ(&shared_a.context(), &ctx);
  EXPECT_EQ(&shared_b.context(), &ctx);
  EXPECT_EQ(&compat.context(), &world.keys.directory.verify_context());
  // Stats stay per-verifier even over a shared context.
  EXPECT_EQ(shared_a.stats().messages, 9u);
  EXPECT_EQ(shared_b.stats().messages, 9u);
  EXPECT_EQ(shared_a.stats().batches, 3u);
}

// A large-e key (the case a product-test accept would have targeted before
// it was rejected as unsound in Z_n*; see rsa.h): batched results must
// still equal per-member rsa_verify exactly.
TEST(RsaVerifyBatchTest, LargeExponentKeyMatchesPerMember) {
  crypto::Drbg rng(7, "bgr-test");
  const crypto::RsaKeyPair base = crypto::generate_rsa_keypair(512, rng);

  // Re-derive a key pair over the same modulus with a ~80-bit exponent.
  const crypto::Bignum p1 = base.priv.p - crypto::Bignum(1);
  const crypto::Bignum q1 = base.priv.q - crypto::Bignum(1);
  const crypto::Bignum phi = p1 * q1;
  crypto::Bignum e;
  do {
    e = rng.random_bits(80);
    e.set_bit(0);
  } while (!crypto::Bignum::gcd(e, phi).is_one());
  const crypto::Bignum d = e.invmod(phi);
  const crypto::RsaPrivateKey priv{.n = base.priv.n,
                                   .e = e,
                                   .d = d,
                                   .p = base.priv.p,
                                   .q = base.priv.q,
                                   .d_p = d % p1,
                                   .d_q = d % q1,
                                   .q_inv = base.priv.q_inv};
  const crypto::RsaPublicKey pub = priv.public_key();
  ASSERT_GT(pub.e.bit_length(), 64u);

  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<std::uint8_t>> signatures;
  for (std::size_t i = 0; i < 6; ++i) {
    payloads.push_back(rng.bytes(64));
    signatures.push_back(crypto::rsa_sign(priv, payloads.back()));
  }
  signatures[4][0] ^= 0x80;  // corrupt one member

  std::vector<crypto::RsaBatchItem> items;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    items.push_back({.message = payloads[i], .signature = signatures[i]});
  }
  // Boyd–Pavlovski-style forgery: s' = n - s passes a naive product test
  // half the time (even random exponents), so it must be rejected here.
  const crypto::Bignum negated =
      pub.n - crypto::Bignum::from_bytes_be(signatures[0]);
  const std::vector<std::uint8_t> forged =
      negated.to_bytes_be(pub.modulus_bytes());
  items.push_back({.message = payloads[0], .signature = forged});

  const std::vector<bool> results = crypto::rsa_verify_batch(pub, items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(results[i],
              crypto::rsa_verify(pub, items[i].message, items[i].signature))
        << "member " << i;
    EXPECT_EQ(results[i], i != 4 && i != 6) << "member " << i;
  }
}

// ---- Merkle-aggregated bundles ----

[[nodiscard]] core::CommitmentBundle bundle_for(std::uint32_t prefix_index,
                                                std::uint64_t epoch,
                                                crypto::Drbg& rng) {
  core::CommitmentBundle bundle;
  bundle.id = core::ProtocolId{
      .prover = 1,
      .prefix = bgp::Ipv4Prefix(0x0A000000u + (prefix_index << 8), 24),
      .epoch = epoch};
  bundle.op = core::OperatorKind::kMinimum;
  bundle.max_len = 4;
  for (std::uint32_t i = 0; i < bundle.max_len; ++i) {
    bundle.bits.push_back(crypto::commit_bit(i >= 1, rng).first);
  }
  return bundle;
}

struct AggregatedWorld {
  core::AsKeyPairs keys;
  std::vector<core::CommitmentBundle> bundles;
  AggregatedCommitment commitment;
};

[[nodiscard]] AggregatedWorld make_aggregated(std::size_t prefixes,
                                              std::uint64_t epoch) {
  AggregatedWorld world;
  crypto::Drbg key_rng(11, "agg-test-keys");
  world.keys = core::generate_keys({1, 2}, key_rng, 512);
  crypto::Drbg commit_rng(12, "agg-test-commits");
  for (std::uint32_t i = 0; i < prefixes; ++i) {
    world.bundles.push_back(bundle_for(i, epoch, commit_rng));
  }
  world.commitment = aggregate_bundles(1, epoch, world.bundles,
                                       world.keys.private_keys.at(1).priv);
  return world;
}

TEST(AggregatedBundleTest, AllOpeningsVerify) {
  const AggregatedWorld world = make_aggregated(9, 5);
  ASSERT_EQ(world.commitment.openings.size(), 9u);
  for (const AggregatedOpening& opening : world.commitment.openings) {
    EXPECT_TRUE(verify_aggregated_opening(
        world.keys.directory, world.commitment.signed_root, opening));
  }
  // The amortized form agrees with the per-opening form.
  const std::vector<bool> batched = verify_aggregated_openings(
      world.keys.directory, world.commitment.signed_root,
      world.commitment.openings);
  EXPECT_EQ(batched, std::vector<bool>(9, true));
}

TEST(AggregatedBundleTest, TamperedBundleRejected) {
  AggregatedWorld world = make_aggregated(4, 1);
  AggregatedOpening tampered = world.commitment.openings[2];
  tampered.bundle.max_len += 1;
  EXPECT_FALSE(verify_aggregated_opening(
      world.keys.directory, world.commitment.signed_root, tampered));
}

TEST(AggregatedBundleTest, CrossEpochTransplantRejected) {
  // A valid opening from epoch 1 must not verify against epoch 2's root.
  const AggregatedWorld epoch1 = make_aggregated(4, 1);
  const AggregatedWorld epoch2 = make_aggregated(4, 2);
  EXPECT_FALSE(verify_aggregated_opening(epoch1.keys.directory,
                                         epoch2.commitment.signed_root,
                                         epoch1.commitment.openings[0]));
}

TEST(AggregatedBundleTest, ForgedRootSignatureRejected) {
  AggregatedWorld world = make_aggregated(4, 1);
  core::SignedMessage forged = world.commitment.signed_root;
  forged.signature[5] ^= 0x10;
  EXPECT_FALSE(verify_aggregated_opening(world.keys.directory, forged,
                                         world.commitment.openings[0]));
  const std::vector<bool> batched = verify_aggregated_openings(
      world.keys.directory, forged, world.commitment.openings);
  EXPECT_EQ(batched, std::vector<bool>(4, false));
}

TEST(AggregatedBundleTest, OpeningRoundTripsOnWire) {
  const AggregatedWorld world = make_aggregated(5, 3);
  const AggregatedOpening& original = world.commitment.openings[3];
  const AggregatedOpening decoded =
      AggregatedOpening::decode(original.encode());
  EXPECT_EQ(decoded.bundle.id, original.bundle.id);
  EXPECT_EQ(decoded.bundle.bits, original.bundle.bits);
  EXPECT_EQ(decoded.proof, original.proof);
  EXPECT_TRUE(verify_aggregated_opening(
      world.keys.directory, world.commitment.signed_root, decoded));

  const AggregatedBundle root =
      AggregatedBundle::decode(world.commitment.signed_root.payload);
  const AggregatedBundle root2 = AggregatedBundle::decode(root.encode());
  EXPECT_EQ(root2.prover, root.prover);
  EXPECT_EQ(root2.epoch, root.epoch);
  EXPECT_EQ(root2.batch, root.batch);
  EXPECT_EQ(root2.prefixes, root.prefixes);
  EXPECT_EQ(root2.root, root.root);
}

}  // namespace
}  // namespace pvr::engine
