// Engine-vs-sequential parity over a concurrent multi-prefix workload: the
// engine at any worker count must produce byte-identical per-node evidence
// to the sequential finalize_round fallback, with two prefixes of the same
// epoch in flight (shards run them in parallel) and an equivocating prover
// supplying non-trivial evidence.
#include <gtest/gtest.h>

#include <string>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "crypto/commitment.h"
#include "engine/verification_engine.h"

namespace pvr::engine {
namespace {

using core::Evidence;
using core::Figure1Handles;
using core::Figure1Setup;
using core::Figure1World;
using core::ProtocolId;

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                                   const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// Identical (same-seed) worlds replay byte-identical message histories, so
// any evidence divergence below is the finalize path's fault.
[[nodiscard]] Figure1Handles run_two_prefix_equivocation_world() {
  Figure1Setup setup{.seed = 34, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  Figure1Handles handles = core::make_figure1_world(setup);
  Figure1World& world = *handles.world;
  const bgp::Ipv4Prefix prefix_b = bgp::Ipv4Prefix::parse("198.51.100.0/24");

  world.sim.schedule(0, [&world, &handles, prefix_b] {
    const std::vector<std::size_t> lengths_a = {3, 4, 5, 6};
    const std::vector<std::size_t> lengths_b = {6, 2, 7, 4};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      const bgp::AsNumber provider = world.providers[i];
      world.node(provider).provide_input(
          world.sim.transport(), 1, handles.prefix,
          route_len(lengths_a[i], provider, handles.prefix));
      world.node(provider).provide_input(
          world.sim.transport(), 1, prefix_b, route_len(lengths_b[i], provider, prefix_b));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
    world.node(world.prover).start_round(world.sim.transport(), 1, prefix_b);
  });
  world.sim.run();
  return handles;
}

[[nodiscard]] std::string evidence_fingerprint(const std::vector<Evidence>& log) {
  std::string out;
  for (const Evidence& item : log) {
    out += item.to_string() + "\n";
    for (const core::SignedMessage& message : item.messages) {
      out += crypto::to_hex(message.encode()) + "\n";
    }
  }
  return out;
}

TEST(MultiPrefixParityTest, EngineMatchesSequentialAt1_2_8Workers) {
  Figure1Handles sequential = run_two_prefix_equivocation_world();
  const ProtocolId id_a = sequential.round_id(1);
  const ProtocolId id_b{.prover = sequential.world->prover,
                        .prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
                        .epoch = 1};

  std::vector<bgp::AsNumber> verifiers = sequential.world->providers;
  verifiers.push_back(sequential.world->recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    sequential.world->node(verifier).finalize_round(id_a);
    sequential.world->node(verifier).finalize_round(id_b);
    ASSERT_FALSE(sequential.world->node(verifier).evidence().empty())
        << "equivocation must be visible to verifier " << verifier;
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Figure1Handles engined = run_two_prefix_equivocation_world();
    VerificationEngine engine({.workers = workers}, &engined.keys->directory);
    // Same submission order as the sequential loop: per verifier, round A
    // then round B — drain applies findings in submission order.
    for (const bgp::AsNumber verifier : verifiers) {
      EXPECT_TRUE(engine.submit_node_round(engined.world->node(verifier), id_a));
      EXPECT_TRUE(engine.submit_node_round(engined.world->node(verifier), id_b));
    }
    const EngineReport report = engine.drain();
    EXPECT_EQ(report.rounds, verifiers.size() * 2);

    for (const bgp::AsNumber verifier : verifiers) {
      EXPECT_EQ(
          evidence_fingerprint(engined.world->node(verifier).evidence()),
          evidence_fingerprint(sequential.world->node(verifier).evidence()))
          << "verifier " << verifier << " at " << workers << " workers";
    }
    EXPECT_EQ(engine.sink().total(), report.violations);
    EXPECT_GT(engine.sink().count(core::ViolationKind::kEquivocation), 0u);
  }
}

// The intra-round split itself: a round with observed equivocation yields
// several check closures (bundle pairs + root pairs + the role part), and
// folding their findings in order reproduces the sequential finalize_round
// byte for byte. This is the reducer the engine's drain runs.
TEST(MultiPrefixParityTest, SplitChecksFoldToSequentialFindings) {
  Figure1Handles sequential = run_two_prefix_equivocation_world();
  Figure1Handles split = run_two_prefix_equivocation_world();
  const ProtocolId id = sequential.round_id(1);

  for (const bgp::AsNumber verifier : sequential.world->providers) {
    core::PvrNode& split_node = split.world->node(verifier);
    std::optional<core::DeferredRoundChecks> checks =
        split_node.defer_finalize_checks(id);
    ASSERT_TRUE(checks.has_value());
    // Equivocation world: at least one pair check plus the role check.
    EXPECT_GE(checks->checks.size(), 2u) << "verifier " << verifier;
    // A second defer (either form) must refuse: the round is finalized.
    EXPECT_FALSE(split_node.defer_finalize_checks(id).has_value());
    EXPECT_FALSE(split_node.defer_finalize(id).has_value());

    core::RoundFindings folded;
    for (auto& check : checks->checks) {
      core::fold_round_findings(folded, check());
    }
    split_node.apply_round_findings(id, folded);

    sequential.world->node(verifier).finalize_round(id);
    EXPECT_EQ(evidence_fingerprint(split_node.evidence()),
              evidence_fingerprint(sequential.world->node(verifier).evidence()))
        << "verifier " << verifier;
  }
}

// Salting only moves tasks between shards; an engine with salting OFF must
// produce the same bytes as the default salted engine.
TEST(MultiPrefixParityTest, UnsaltedEngineMatchesSaltedEngine) {
  const ProtocolId id_b{.prover = 100,
                        .prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
                        .epoch = 1};
  Figure1Handles salted = run_two_prefix_equivocation_world();
  Figure1Handles unsalted = run_two_prefix_equivocation_world();
  ASSERT_EQ(salted.world->prover, 100u);

  std::vector<bgp::AsNumber> verifiers = salted.world->providers;
  verifiers.push_back(salted.world->recipient);
  VerificationEngine salted_engine({.workers = 8}, &salted.keys->directory);
  VerificationEngine unsalted_engine({.workers = 8, .salt_shards = false},
                                     &unsalted.keys->directory);
  for (const bgp::AsNumber verifier : verifiers) {
    for (const ProtocolId& id : {salted.round_id(1), id_b}) {
      EXPECT_TRUE(salted_engine.submit_node_round(salted.world->node(verifier), id));
      EXPECT_TRUE(
          unsalted_engine.submit_node_round(unsalted.world->node(verifier), id));
    }
  }
  (void)salted_engine.drain();
  (void)unsalted_engine.drain();
  for (const bgp::AsNumber verifier : verifiers) {
    EXPECT_EQ(evidence_fingerprint(salted.world->node(verifier).evidence()),
              evidence_fingerprint(unsalted.world->node(verifier).evidence()))
        << "verifier " << verifier;
  }
  EXPECT_EQ(salted_engine.sink().total(), unsalted_engine.sink().total());
}

// Chunked pair enumeration: a round with a huge observed-bundle set has
// O(pairs) equivocation checks; defer_finalize_checks must bound the task
// count at ceil(pairs / finalize_chunk_pairs) per kind while the fold
// stays byte-identical to the sequential path AND to chunk size 1 (the
// legacy one-task-per-pair split).
TEST(MultiPrefixParityTest, ChunkedPairChecksBoundTasksAndFoldIdentically) {
  constexpr std::size_t kVariants = 10;  // + the honest bundle = 11 -> 55 pairs
  constexpr bgp::AsNumber kVerifier = 300;

  // Crafts kVariants distinct prover-signed bundles for round `id` and
  // injects them into the verifier as if an equivocating prover had sent
  // them; identical seeds make the three worlds' states byte-identical.
  const auto inject_variants = [](Figure1Handles& handles,
                                  const ProtocolId& id) {
    crypto::Drbg rng(99, "chunk-test-variants");
    core::PvrNode& node = handles.world->node(kVerifier);
    for (std::size_t v = 0; v < kVariants; ++v) {
      core::CommitmentBundle bundle{
          .id = id, .op = core::OperatorKind::kMinimum, .max_len = 4, .bits = {}};
      for (std::size_t b = 0; b < 4; ++b) {
        bundle.bits.push_back(crypto::commit_bit(true, rng).first);
      }
      const core::SignedMessage signed_bundle = core::sign_message(
          id.prover, handles.keys->private_keys.at(id.prover).priv,
          bundle.encode());
      node.on_message(handles.world->sim.transport(),
                      net::Message{.from = id.prover,
                                   .to = kVerifier,
                                   .channel = core::kBundleChannel,
                                   .payload = signed_bundle.encode()});
    }
  };
  const auto make_world = [&](std::size_t chunk_pairs) {
    Figure1Setup setup{.seed = 52, .provider_count = 4};
    setup.finalize_chunk_pairs = chunk_pairs;
    Figure1Handles handles = core::make_figure1_world(setup);
    Figure1World& world = *handles.world;
    world.sim.schedule(0, [&world, &handles] {
      for (std::size_t i = 0; i < world.providers.size(); ++i) {
        world.node(world.providers[i])
            .provide_input(world.sim.transport(), 1, handles.prefix,
                           route_len(3 + i, world.providers[i], handles.prefix));
      }
      world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
    });
    world.sim.run();
    inject_variants(handles, handles.round_id(1));
    return handles;
  };

  Figure1Handles sequential = make_world(32);
  Figure1Handles chunked = make_world(32);
  Figure1Handles per_pair = make_world(1);
  const ProtocolId id = sequential.round_id(1);

  sequential.world->node(kVerifier).finalize_round(id);
  ASSERT_FALSE(sequential.world->node(kVerifier).evidence().empty());

  // 11 observed bundles -> 55 pairs: ceil(55/32) = 2 chunks + the role
  // check at the default chunk size, 55 + 1 tasks at chunk size 1.
  const auto run_split = [&](Figure1Handles& handles,
                             std::size_t expected_tasks) {
    core::PvrNode& node = handles.world->node(kVerifier);
    std::optional<core::DeferredRoundChecks> checks =
        node.defer_finalize_checks(id);
    ASSERT_TRUE(checks.has_value());
    EXPECT_EQ(checks->checks.size(), expected_tasks);
    core::RoundFindings folded;
    for (auto& check : checks->checks) {
      core::fold_round_findings(folded, check());
    }
    node.apply_round_findings(id, folded);
  };
  run_split(chunked, 3);
  run_split(per_pair, 56);

  const std::string expected =
      evidence_fingerprint(sequential.world->node(kVerifier).evidence());
  EXPECT_EQ(evidence_fingerprint(chunked.world->node(kVerifier).evidence()),
            expected);
  EXPECT_EQ(evidence_fingerprint(per_pair.world->node(kVerifier).evidence()),
            expected);
}

// The two prefixes of one (prover, epoch) hash to different shards only if
// the prefix participates in shard assignment; same-prefix rounds must
// still serialize. Guards the keying the parity above relies on.
TEST(MultiPrefixParityTest, ShardAssignmentUsesPrefix) {
  RoundScheduler scheduler({.workers = 1, .shards = 64});
  const ProtocolId id_a{.prover = 7,
                        .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                        .epoch = 1};
  ProtocolId id_a_later = id_a;
  id_a_later.epoch = 9;
  const ProtocolId id_b{.prover = 7,
                        .prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
                        .epoch = 1};
  EXPECT_EQ(scheduler.shard_of(id_a), scheduler.shard_of(id_a_later));
  // Not guaranteed for arbitrary prefixes, but these two differ under the
  // current hash — a regression to epoch-only or prover-only sharding
  // would collapse them.
  EXPECT_NE(scheduler.shard_of(id_a), scheduler.shard_of(id_b));
}

}  // namespace
}  // namespace pvr::engine
