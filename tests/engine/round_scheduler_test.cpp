#include "engine/round_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <string>

namespace pvr::engine {
namespace {

[[nodiscard]] core::ProtocolId round_id(std::uint32_t prefix_index,
                                        std::uint64_t epoch) {
  return core::ProtocolId{
      .prover = 1,
      .prefix = bgp::Ipv4Prefix(0x0A000000u + (prefix_index << 8), 24),
      .epoch = epoch};
}

// A fake round that reports which round it was via Evidence.detail.
[[nodiscard]] core::RoundFindings findings_for(std::uint32_t prefix_index,
                                               std::uint64_t epoch) {
  core::RoundFindings findings;
  findings.evidence.push_back(core::Evidence{
      .kind = core::ViolationKind::kEquivocation,
      .accused = 1,
      .reporter = prefix_index,
      .index = static_cast<std::uint32_t>(epoch),
      .messages = {},
      .detail = "round " + std::to_string(prefix_index) + "/" +
                std::to_string(epoch)});
  return findings;
}

// Drained outcome sequence serialized to one string for comparisons.
[[nodiscard]] std::string outcome_trace(const std::vector<RoundOutcome>& outcomes) {
  std::string trace;
  for (const RoundOutcome& outcome : outcomes) {
    trace += std::to_string(outcome.id.epoch) + ":";
    for (const core::Evidence& item : outcome.findings.evidence) {
      trace += item.detail + ";";
    }
    trace += "|";
  }
  return trace;
}

[[nodiscard]] std::string run_workload(std::size_t workers,
                                       bool salt_shards = true) {
  RoundScheduler scheduler(
      {.workers = workers, .shards = 16, .salt_shards = salt_shards});
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    for (std::uint32_t prefix = 0; prefix < 40; ++prefix) {
      scheduler.submit(round_id(prefix, epoch), [prefix, epoch] {
        return findings_for(prefix, epoch);
      });
    }
  }
  return outcome_trace(scheduler.drain());
}

TEST(RoundSchedulerTest, DrainReturnsSubmissionOrder) {
  RoundScheduler scheduler({.workers = 4, .shards = 8});
  for (std::uint64_t epoch = 1; epoch <= 30; ++epoch) {
    scheduler.submit(round_id(epoch % 7, epoch),
                     [epoch] { return findings_for(epoch % 7, epoch); });
  }
  const std::vector<RoundOutcome> outcomes = scheduler.drain();
  ASSERT_EQ(outcomes.size(), 30u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].id.epoch, i + 1);
    ASSERT_EQ(outcomes[i].findings.evidence.size(), 1u);
    EXPECT_EQ(outcomes[i].findings.evidence[0].index, i + 1);
  }
}

TEST(RoundSchedulerTest, DeterministicAcrossWorkerCounts) {
  const std::string reference = run_workload(1);
  EXPECT_EQ(run_workload(2), reference);
  EXPECT_EQ(run_workload(4), reference);
  EXPECT_EQ(run_workload(8), reference);
}

// Salting changes WHERE tasks run, never what drain() returns: the drained
// sequence is byte-identical across salting modes and worker counts.
TEST(RoundSchedulerTest, DeterministicAcrossSaltingModes) {
  const std::string reference = run_workload(1, /*salt_shards=*/false);
  EXPECT_EQ(run_workload(1, /*salt_shards=*/true), reference);
  EXPECT_EQ(run_workload(8, /*salt_shards=*/false), reference);
  EXPECT_EQ(run_workload(8, /*salt_shards=*/true), reference);
}

// The legacy guarantee survives behind salt_shards = false: closures that
// share per-(prover, prefix) state still serialize in submission order.
TEST(RoundSchedulerTest, SamePrefixRoundsRunSerially) {
  RoundScheduler scheduler({.workers = 8, .shards = 4, .salt_shards = false});
  std::mutex order_mutex;
  std::map<std::uint32_t, std::vector<std::uint64_t>> executed;
  for (std::uint64_t epoch = 1; epoch <= 20; ++epoch) {
    for (std::uint32_t prefix = 0; prefix < 6; ++prefix) {
      scheduler.submit(round_id(prefix, epoch), [&, prefix, epoch] {
        {
          const std::lock_guard<std::mutex> lock(order_mutex);
          executed[prefix].push_back(epoch);
        }
        return core::RoundFindings{};
      });
    }
  }
  (void)scheduler.drain();
  for (const auto& [prefix, epochs] : executed) {
    EXPECT_TRUE(std::is_sorted(epochs.begin(), epochs.end()))
        << "prefix " << prefix << " executed out of submission order";
    EXPECT_EQ(epochs.size(), 20u);
  }
}

TEST(RoundSchedulerTest, ShardsAreReasonablyBalanced) {
  RoundScheduler scheduler({.workers = 2, .shards = 16});
  for (std::uint32_t prefix = 0; prefix < 1600; ++prefix) {
    scheduler.submit(round_id(prefix, 1),
                     [] { return core::RoundFindings{}; });
  }
  (void)scheduler.drain();
  const std::vector<std::uint64_t> loads = scheduler.shard_loads();
  ASSERT_EQ(loads.size(), 16u);
  const std::uint64_t total = std::accumulate(loads.begin(), loads.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, 1600u);
  const std::uint64_t mean = total / loads.size();  // 100 per shard
  for (const std::uint64_t load : loads) {
    EXPECT_GT(load, mean / 2) << "starved shard";
    EXPECT_LT(load, mean * 2) << "overloaded shard";
  }
}

TEST(RoundSchedulerTest, SameProtocolIdHashesToSameShard) {
  RoundScheduler scheduler({.workers = 1, .shards = 32});
  const core::ProtocolId a = round_id(7, 1);
  const core::ProtocolId b = round_id(7, 99);  // same prefix, other epoch
  EXPECT_EQ(scheduler.shard_of(a), scheduler.shard_of(b));
}

// Salted mode: submissions of ONE (prover, prefix) — e.g. the n+1 checks
// of a single round — must spread over the shards instead of pinning one,
// or a hot prefix serializes on a single worker (the speedup_8v1 = 0.97
// regression this PR exists to fix).
TEST(RoundSchedulerTest, SaltedSubmissionsOfOneRoundSpreadAcrossShards) {
  RoundScheduler scheduler({.workers = 2, .shards = 16});
  ASSERT_TRUE(scheduler.salted());
  const core::ProtocolId hot = round_id(7, 1);
  for (std::size_t i = 0; i < 160; ++i) {
    scheduler.submit(hot, [] { return core::RoundFindings{}; });
  }
  (void)scheduler.drain();
  const std::vector<std::uint64_t> loads = scheduler.shard_loads();
  const std::size_t used = static_cast<std::size_t>(
      std::count_if(loads.begin(), loads.end(),
                    [](std::uint64_t load) { return load > 0; }));
  // The splitmix-style mix over (key ⊕ ticket) should touch nearly every
  // shard at 160 submissions / 16 shards; >= 12 leaves generous slack.
  EXPECT_GE(used, 12u);
  std::uint64_t heaviest = 0;
  for (const std::uint64_t load : loads) heaviest = std::max(heaviest, load);
  EXPECT_LT(heaviest, 160u / 3) << "salted hot key still pins one shard";
}

// The salted key must actually vary with the ticket (a constant salt would
// silently restore the hot-shard pin), and stay stable for a fixed ticket.
TEST(RoundSchedulerTest, SaltedShardKeyVariesWithTicket) {
  RoundScheduler scheduler({.workers = 1, .shards = 64});
  const core::ProtocolId hot = round_id(3, 1);
  std::set<std::size_t> shards;
  for (std::size_t salt = 0; salt < 32; ++salt) {
    EXPECT_EQ(scheduler.shard_of(hot, salt), scheduler.shard_of(hot, salt));
    shards.insert(scheduler.shard_of(hot, salt));
  }
  EXPECT_GE(shards.size(), 16u) << "ticket salt barely perturbs the shard";
}

TEST(RoundSchedulerTest, ExceptionIsolatedToItsRound) {
  RoundScheduler scheduler({.workers = 2, .shards = 4});
  scheduler.submit(round_id(0, 1), [] { return findings_for(0, 1); });
  scheduler.submit(round_id(1, 1), []() -> core::RoundFindings {
    throw std::runtime_error("round blew up");
  });
  const std::vector<RoundOutcome> outcomes = scheduler.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  // The healthy round's findings survive; the failed one carries its error.
  EXPECT_EQ(outcomes[0].error, nullptr);
  EXPECT_EQ(outcomes[0].findings.evidence.size(), 1u);
  ASSERT_NE(outcomes[1].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(outcomes[1].error), std::runtime_error);

  // Scheduler must remain usable after a failed batch.
  scheduler.submit(round_id(2, 2), [] { return findings_for(2, 2); });
  const std::vector<RoundOutcome> next = scheduler.drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id.epoch, 2u);
}

}  // namespace
}  // namespace pvr::engine
