// Two-phase (pipelined) drain protocol: begin_drain seals a batch and the
// worker pool folds it in the background; collect applies the findings on
// the calling thread. These tests pin the protocol's contract (DESIGN.md
// §12): submission-ordered delivery across batches, one-batch-in-flight
// guards, exception isolation, empty batches, and byte-parity with the
// blocking drain() composition.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/keys.h"
#include "engine/verification_engine.h"

namespace pvr::engine {
namespace {

[[nodiscard]] core::ProtocolId round_id(std::uint32_t prefix_index,
                                        std::uint64_t epoch) {
  return core::ProtocolId{
      .prover = 1,
      .prefix = bgp::Ipv4Prefix(0x0A000000u + (prefix_index << 8), 24),
      .epoch = epoch};
}

[[nodiscard]] core::RoundFindings findings_for(std::uint32_t prefix_index,
                                               std::uint64_t epoch) {
  core::RoundFindings findings;
  findings.evidence.push_back(core::Evidence{
      .kind = core::ViolationKind::kEquivocation,
      .accused = 1,
      .reporter = prefix_index,
      .index = static_cast<std::uint32_t>(epoch),
      .messages = {},
      .detail = "round " + std::to_string(prefix_index) + "/" +
                std::to_string(epoch)});
  return findings;
}

[[nodiscard]] std::string evidence_trace(
    const std::vector<core::Evidence>& log) {
  std::string trace;
  for (const core::Evidence& item : log) trace += item.detail + "|";
  return trace;
}

// Each directory-less engine test drives free-standing rounds only.
[[nodiscard]] VerificationEngine make_engine(std::size_t workers) {
  static const core::KeyDirectory kEmptyDirectory;
  return VerificationEngine({.workers = workers}, &kEmptyDirectory);
}

// The sink log after several begin_drain/collect batches must equal the
// GLOBAL submission order — batch boundaries shift work across threads but
// never reorder delivery.
TEST(PipelinedDrainTest, SinkOrderSpansBatchesInSubmissionOrder) {
  VerificationEngine engine = make_engine(8);
  std::string expected;
  for (std::uint64_t batch = 1; batch <= 5; ++batch) {
    for (std::uint32_t prefix = 0; prefix < 17; ++prefix) {
      engine.submit(round_id(prefix, batch), [prefix, batch] {
        return findings_for(prefix, batch);
      });
      expected += "round " + std::to_string(prefix) + "/" +
                  std::to_string(batch) + "|";
    }
    engine.begin_drain();
    // The simulator would advance here; the pool folds in the background.
    const EngineReport report = engine.collect();
    EXPECT_EQ(report.rounds, 17u);
    EXPECT_EQ(report.failed_rounds, 0u);
  }
  EXPECT_EQ(evidence_trace(engine.sink().snapshot()), expected);
}

// Byte-parity: the same workload through begin_drain/collect and through
// the blocking drain() must produce identical sink logs.
TEST(PipelinedDrainTest, MatchesBlockingDrainByteForByte) {
  const auto run = [](bool pipelined) {
    VerificationEngine engine = make_engine(4);
    for (std::uint64_t batch = 1; batch <= 3; ++batch) {
      for (std::uint32_t prefix = 0; prefix < 23; ++prefix) {
        engine.submit(round_id(prefix, batch), [prefix, batch] {
          return findings_for(prefix, batch);
        });
      }
      if (pipelined) {
        engine.begin_drain();
        (void)engine.collect();
      } else {
        (void)engine.drain();
      }
    }
    return evidence_trace(engine.sink().snapshot());
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(PipelinedDrainTest, EmptyBatchCollectsEmptyReport) {
  VerificationEngine engine = make_engine(2);
  engine.begin_drain();
  EXPECT_TRUE(engine.has_pending());
  const EngineReport report = engine.collect();
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_EQ(report.outcomes.size(), 0u);
  EXPECT_FALSE(engine.has_pending());
}

TEST(PipelinedDrainTest, HasPendingTracksTheInFlightBatch) {
  VerificationEngine engine = make_engine(2);
  EXPECT_FALSE(engine.has_pending());
  engine.submit(round_id(0, 1), [] { return findings_for(0, 1); });
  EXPECT_FALSE(engine.has_pending());
  engine.begin_drain();
  EXPECT_TRUE(engine.has_pending());
  (void)engine.collect();
  EXPECT_FALSE(engine.has_pending());
}

// At most one batch in flight: submit, begin_drain, and the blocking
// drain() all refuse while a batch is pending, and collect refuses when
// none is.
TEST(PipelinedDrainTest, GuardsAgainstOverlappingBatches) {
  VerificationEngine engine = make_engine(2);
  EXPECT_THROW((void)engine.collect(), std::logic_error);
  engine.submit(round_id(0, 1), [] { return findings_for(0, 1); });
  engine.begin_drain();
  EXPECT_THROW(engine.submit(round_id(1, 1), [] { return findings_for(1, 1); }),
               std::logic_error);
  EXPECT_THROW(engine.begin_drain(), std::logic_error);
  EXPECT_THROW((void)engine.drain(), std::logic_error);
  const EngineReport report = engine.collect();
  EXPECT_EQ(report.rounds, 1u);
  // The guards released: the next batch proceeds normally.
  engine.submit(round_id(2, 2), [] { return findings_for(2, 2); });
  engine.begin_drain();
  EXPECT_EQ(engine.collect().rounds, 1u);
}

// A throwing round loses only its own findings; the rest of the batch is
// delivered, and collect(false) reports the failure as a count instead of
// unwinding.
TEST(PipelinedDrainTest, ExceptionIsolationAcrossTheAsyncBoundary) {
  VerificationEngine engine = make_engine(4);
  engine.submit(round_id(0, 1), [] { return findings_for(0, 1); });
  engine.submit(round_id(1, 1), []() -> core::RoundFindings {
    throw std::runtime_error("round 1 exploded");
  });
  engine.submit(round_id(2, 1), [] { return findings_for(2, 1); });
  engine.begin_drain();
  const EngineReport report = engine.collect(/*rethrow_errors=*/false);
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_EQ(report.failed_rounds, 1u);
  EXPECT_EQ(evidence_trace(engine.sink().snapshot()),
            "round 0/1|round 2/1|");

  // With rethrow_errors (the default) the first error surfaces — but only
  // AFTER the successful rounds' findings were recorded.
  engine.submit(round_id(3, 2), [] { return findings_for(3, 2); });
  engine.submit(round_id(4, 2), []() -> core::RoundFindings {
    throw std::runtime_error("round 4 exploded");
  });
  engine.begin_drain();
  EXPECT_THROW((void)engine.collect(), std::runtime_error);
  EXPECT_EQ(evidence_trace(engine.sink().snapshot()),
            "round 0/1|round 2/1|round 3/2|");
}

// The overlap accounting the scenario runner aggregates: work folded while
// the caller was away shows up as overlapped_ms > 0, and the fold window
// (verify_wall_ms) covers at least the task's own run time.
TEST(PipelinedDrainTest, OverlapAccountingSeesWorkDoneWhileAway) {
  VerificationEngine engine = make_engine(1);
  engine.submit(round_id(0, 1), [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    return findings_for(0, 1);
  });
  engine.begin_drain();
  // Simulate "the simulator advancing": stay away long enough that the
  // fold certainly finished before collect arrived.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const EngineReport report = engine.collect();
  EXPECT_GT(report.verify_wall_ms, 0.0);
  EXPECT_GT(report.overlapped_ms, 0.0);
  EXPECT_LE(report.overlapped_ms, report.verify_wall_ms + 0.001);
}

}  // namespace
}  // namespace pvr::engine
