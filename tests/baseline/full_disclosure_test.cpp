#include "baseline/full_disclosure.h"

#include <gtest/gtest.h>

namespace pvr::baseline {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber next_hop) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(1000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

TEST(FullDisclosureTest, CompleteVerification) {
  const core::Promise promise{.type = core::PromiseType::kShortestOfAll};
  const core::Promise::Inputs inputs = {{1, route_len(3, 1)},
                                        {2, route_len(2, 2)}};
  EXPECT_TRUE(
      full_disclosure_audit(promise, inputs, route_len(2, 2), 3).promise_kept);
  EXPECT_FALSE(
      full_disclosure_audit(promise, inputs, route_len(3, 1), 3).promise_kept);
}

// It can even check promises PVR's simple protocols cannot (slack), which
// is the completeness end of the tradeoff.
TEST(FullDisclosureTest, ChecksSlackPromises) {
  const core::Promise promise{.type = core::PromiseType::kWithinSlackOfBest,
                              .slack = 1};
  const core::Promise::Inputs inputs = {{1, route_len(3, 1)},
                                        {2, route_len(2, 2)}};
  EXPECT_TRUE(
      full_disclosure_audit(promise, inputs, route_len(3, 1), 3).promise_kept);
}

TEST(FullDisclosureTest, LeakageScalesWithVerifiersAndRoutes) {
  const core::Promise promise{.type = core::PromiseType::kShortestOfAll};
  const core::Promise::Inputs inputs = {
      {1, route_len(3, 1)}, {2, route_len(2, 2)}, {3, std::nullopt}};
  const FullDisclosureReport report =
      full_disclosure_audit(promise, inputs, route_len(2, 2), 4);
  // 2 real routes x 4 verifiers.
  EXPECT_EQ(report.routes_revealed, 8u);
  EXPECT_GT(report.bytes_revealed, 0u);

  const FullDisclosureReport fewer =
      full_disclosure_audit(promise, inputs, route_len(2, 2), 2);
  EXPECT_EQ(fewer.routes_revealed, 4u);
  EXPECT_LT(fewer.bytes_revealed, report.bytes_revealed);
}

TEST(FullDisclosureTest, NoInputsNoLeakage) {
  const core::Promise promise{.type = core::PromiseType::kShortestOfAll};
  const FullDisclosureReport report =
      full_disclosure_audit(promise, {}, std::nullopt, 5);
  EXPECT_TRUE(report.promise_kept);
  EXPECT_EQ(report.routes_revealed, 0u);
  EXPECT_EQ(report.bytes_revealed, 0u);
}

}  // namespace
}  // namespace pvr::baseline
