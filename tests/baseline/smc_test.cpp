#include "baseline/smc/circuit.h"
#include "baseline/smc/gmw.h"

#include <gtest/gtest.h>

namespace pvr::baseline::smc {
namespace {

[[nodiscard]] std::vector<bool> word_bits(std::uint64_t value, std::size_t width) {
  std::vector<bool> bits(width);
  for (std::size_t i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

[[nodiscard]] std::uint64_t bits_word(const std::vector<bool>& bits) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) value |= std::uint64_t{1} << i;
  }
  return value;
}

TEST(CircuitTest, BasicGates) {
  Circuit circuit;
  const Wire a = circuit.add_input();
  const Wire b = circuit.add_input();
  circuit.mark_output(circuit.add_xor(a, b));
  circuit.mark_output(circuit.add_and(a, b));
  circuit.mark_output(circuit.add_not(a));
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto out = circuit.evaluate({va, vb});
      EXPECT_EQ(out[0], va ^ vb);
      EXPECT_EQ(out[1], va && vb);
      EXPECT_EQ(out[2], !va);
    }
  }
}

TEST(CircuitTest, WireValidation) {
  Circuit circuit;
  const Wire a = circuit.add_input();
  EXPECT_THROW((void)circuit.add_xor(a, 99), std::out_of_range);
  EXPECT_THROW((void)circuit.evaluate({true, true}), std::invalid_argument);
}

TEST(CircuitTest, LessThanExhaustive4Bit) {
  Circuit circuit;
  const auto a = circuit.add_input_word(4);
  const auto b = circuit.add_input_word(4);
  circuit.mark_output(circuit.less_than(a, b));
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      std::vector<bool> inputs = word_bits(x, 4);
      const auto yb = word_bits(y, 4);
      inputs.insert(inputs.end(), yb.begin(), yb.end());
      EXPECT_EQ(circuit.evaluate(inputs)[0], x < y) << x << " < " << y;
    }
  }
}

TEST(CircuitTest, MinimumCircuitCorrect) {
  const std::size_t width = 6;
  for (const std::size_t parties : {2u, 3u, 5u}) {
    const Circuit circuit = build_minimum_circuit(parties, width);
    crypto::Drbg rng(parties, "min-circuit-test");
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> inputs;
      std::uint64_t expected = ~0ULL;
      for (std::size_t p = 0; p < parties; ++p) {
        const std::uint64_t value = rng.uniform(1u << width);
        expected = std::min(expected, value);
        const auto bits = word_bits(value, width);
        inputs.insert(inputs.end(), bits.begin(), bits.end());
      }
      EXPECT_EQ(bits_word(circuit.evaluate(inputs)), expected);
    }
  }
}

TEST(CircuitTest, ExistentialCircuitCorrect) {
  const Circuit circuit = build_existential_circuit(3, 4);
  auto eval = [&](std::uint64_t a, std::uint64_t b, std::uint64_t c) -> bool {
    std::vector<bool> inputs;
    for (const std::uint64_t v : {a, b, c}) {
      const auto bits = word_bits(v, 4);
      inputs.insert(inputs.end(), bits.begin(), bits.end());
    }
    return circuit.evaluate(inputs)[0];
  };
  EXPECT_FALSE(eval(0, 0, 0));
  EXPECT_TRUE(eval(0, 5, 0));
  EXPECT_TRUE(eval(1, 2, 3));
}

TEST(CircuitTest, CostsScaleWithParties) {
  const Circuit small = build_minimum_circuit(2, 16);
  const Circuit large = build_minimum_circuit(8, 16);
  EXPECT_GT(large.and_count(), small.and_count());
  EXPECT_GT(large.and_depth(), small.and_depth());
  EXPECT_GT(small.and_count(), 0u);
}

TEST(GmwTest, MatchesPlaintextEvaluation) {
  const std::size_t width = 5;
  const Circuit circuit = build_minimum_circuit(3, width);
  crypto::Drbg rng(77, "gmw-test");
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> inputs;
    for (std::size_t p = 0; p < 3; ++p) {
      const auto bits = word_bits(rng.uniform(1u << width), width);
      inputs.insert(inputs.end(), bits.begin(), bits.end());
    }
    const GmwResult result = gmw_evaluate(circuit, inputs, 3, rng);
    EXPECT_EQ(result.outputs, circuit.evaluate(inputs));
  }
}

TEST(GmwTest, StatsAreAccounted) {
  const Circuit circuit = build_minimum_circuit(5, 16);
  crypto::Drbg rng(1, "gmw-stats");
  std::vector<bool> inputs(circuit.input_count(), false);
  const GmwResult result = gmw_evaluate(circuit, inputs, 5, rng);
  EXPECT_EQ(result.stats.parties, 5u);
  EXPECT_EQ(result.stats.and_gates, circuit.and_count());
  EXPECT_GE(result.stats.rounds, circuit.and_depth());
  EXPECT_GT(result.stats.messages, 0u);
  EXPECT_GT(result.stats.bytes, 0u);
  // Modeled latency dominates with WAN RTTs: the §3.1 "15 seconds" shape.
  EXPECT_GT(result.stats.modeled_seconds(0.1), 1.0);
}

TEST(GmwTest, NeedsTwoParties) {
  const Circuit circuit = build_minimum_circuit(2, 4);
  crypto::Drbg rng(1, "gmw-val");
  std::vector<bool> inputs(circuit.input_count(), false);
  EXPECT_THROW((void)gmw_evaluate(circuit, inputs, 1, rng), std::invalid_argument);
  EXPECT_THROW((void)gmw_evaluate(circuit, {true}, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pvr::baseline::smc
