#include "baseline/sbgp.h"

#include <gtest/gtest.h>

namespace pvr::baseline {
namespace {

// Path: origin 1 -> 2 -> 3 -> receiver 4.
class SbgpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(21, "sbgp-keys");
    keys_ = new core::AsKeyPairs(core::generate_keys({1, 2, 3, 4}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static const core::KeyDirectory& directory() { return keys_->directory; }
  static const crypto::RsaPrivateKey& key_of(bgp::AsNumber asn) {
    return keys_->private_keys.at(asn).priv;
  }

  [[nodiscard]] static SbgpAnnouncement chain_to_4() {
    const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");
    SbgpAnnouncement a = sbgp_originate(prefix, 1, 2, key_of(1));
    a = sbgp_extend(a, 2, 3, key_of(2));
    return sbgp_extend(a, 3, 4, key_of(3));
  }

 private:
  static core::AsKeyPairs* keys_;
};

core::AsKeyPairs* SbgpTest::keys_ = nullptr;

TEST_F(SbgpTest, ValidChainVerifies) {
  const SbgpAnnouncement announcement = chain_to_4();
  EXPECT_EQ(announcement.path.hops(), (std::vector<bgp::AsNumber>{3, 2, 1}));
  EXPECT_TRUE(sbgp_verify(directory(), announcement, 4));
}

TEST_F(SbgpTest, WrongReceiverRejected) {
  // The last attestation is addressed to 4; AS 9 must not accept it.
  EXPECT_FALSE(sbgp_verify(directory(), chain_to_4(), 9));
}

TEST_F(SbgpTest, PathShorteningDetected) {
  // AS 3 tries to hide AS 2 from the path (path forgery).
  SbgpAnnouncement forged = chain_to_4();
  forged.path = bgp::AsPath{3, 1};
  forged.attestations.erase(forged.attestations.begin() + 1);
  EXPECT_FALSE(sbgp_verify(directory(), forged, 4));
}

TEST_F(SbgpTest, PathInsertionDetected) {
  SbgpAnnouncement forged = chain_to_4();
  forged.path = bgp::AsPath{3, 2, 9, 1};
  EXPECT_FALSE(sbgp_verify(directory(), forged, 4));
}

TEST_F(SbgpTest, TamperedSignatureDetected) {
  SbgpAnnouncement forged = chain_to_4();
  forged.attestations[1].signature[5] ^= 1;
  EXPECT_FALSE(sbgp_verify(directory(), forged, 4));
}

TEST_F(SbgpTest, ReplayToDifferentNeighborRejected) {
  // 3 attests "to 4"; relaying the same chain to 2 fails the `to` check.
  EXPECT_FALSE(sbgp_verify(directory(), chain_to_4(), 2));
}

TEST_F(SbgpTest, EmptyAnnouncementRejected) {
  EXPECT_FALSE(sbgp_verify(directory(), SbgpAnnouncement{}, 4));
}

TEST_F(SbgpTest, AttestationRoundTrip) {
  const Attestation attestation{
      .prefix = bgp::Ipv4Prefix::parse("10.0.0.0/8"),
      .signer = 7,
      .to = 8,
      .suffix = {7, 6, 5},
  };
  const Attestation decoded = Attestation::decode(attestation.encode());
  EXPECT_EQ(decoded.prefix, attestation.prefix);
  EXPECT_EQ(decoded.signer, attestation.signer);
  EXPECT_EQ(decoded.to, attestation.to);
  EXPECT_EQ(decoded.suffix, attestation.suffix);
}

// The paper's central observation: S-BGP validates the *path*, not the
// *decision*. An AS that received a 1-hop route and exports a 3-hop one
// still produces a chain S-BGP accepts — exactly the gap PVR closes.
TEST_F(SbgpTest, DecisionViolationsPassSbgp) {
  const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");
  // AS 3 receives a direct route from origin 1...
  const SbgpAnnouncement direct =
      sbgp_extend(sbgp_originate(prefix, 1, 3, key_of(1)), 3, 4, key_of(3));
  // ...and also the long way around via 2; it exports the LONG one.
  const SbgpAnnouncement longer = chain_to_4();
  EXPECT_TRUE(sbgp_verify(directory(), direct, 4));
  EXPECT_TRUE(sbgp_verify(directory(), longer, 4));
  // Both are path-valid: S-BGP gives AS 4 no way to tell that AS 3 broke a
  // "shortest route" promise.
  EXPECT_GT(longer.path.length(), direct.path.length());
}

TEST_F(SbgpTest, WireSizeGrowsWithPath) {
  const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");
  const SbgpAnnouncement one_hop = sbgp_originate(prefix, 1, 2, key_of(1));
  EXPECT_GT(sbgp_wire_size(chain_to_4()), sbgp_wire_size(one_hop));
}

}  // namespace
}  // namespace pvr::baseline
