#include "rfg/access_control.h"

#include <gtest/gtest.h>

namespace pvr::rfg {
namespace {

TEST(AccessPolicyTest, DefaultDeny) {
  const AccessPolicy policy;
  EXPECT_FALSE(policy.allowed(1, "var:x"));
  EXPECT_FALSE(policy.allowed(1, "var:x", Component::kPredecessors));
}

TEST(AccessPolicyTest, GrantPerComponent) {
  AccessPolicy policy;
  policy.grant(1, "op:min", Component::kPayload);
  EXPECT_TRUE(policy.allowed(1, "op:min", Component::kPayload));
  EXPECT_FALSE(policy.allowed(1, "op:min", Component::kPredecessors));
  EXPECT_FALSE(policy.allowed(2, "op:min", Component::kPayload));
  // Coarse α == payload visibility.
  EXPECT_TRUE(policy.allowed(1, "op:min"));
}

TEST(AccessPolicyTest, GrantAllAndRevoke) {
  AccessPolicy policy;
  policy.grant_all(5, "var:v");
  EXPECT_TRUE(policy.allowed(5, "var:v", Component::kPredecessors));
  EXPECT_TRUE(policy.allowed(5, "var:v", Component::kSuccessors));
  EXPECT_TRUE(policy.allowed(5, "var:v", Component::kPayload));

  policy.revoke(5, "var:v", Component::kPayload);
  EXPECT_FALSE(policy.allowed(5, "var:v", Component::kPayload));
  EXPECT_TRUE(policy.allowed(5, "var:v", Component::kSuccessors));
}

TEST(AccessPolicyTest, RevokeUnknownIsNoop) {
  AccessPolicy policy;
  policy.revoke(1, "nothing", Component::kPayload);
  EXPECT_FALSE(policy.allowed(1, "nothing"));
}

TEST(AccessPolicyTest, VisibleVertices) {
  AccessPolicy policy;
  policy.grant_all(1, "a");
  policy.grant(1, "b", Component::kSuccessors);
  policy.grant_all(2, "c");
  const auto visible = policy.visible_vertices(1);
  EXPECT_EQ(visible, (std::set<VertexId>{"a", "b"}));
}

TEST(AccessPolicyTest, Figure1PolicyMatchesPaper) {
  const std::vector<bgp::AsNumber> providers = {11, 12, 13};
  const bgp::AsNumber b = 99;
  const RouteFlowGraph graph = make_figure1_graph(providers, b);
  const AccessPolicy policy =
      AccessPolicy::figure1_policy(graph, providers, b, "op:min");

  // α(Ni, ri) = TRUE, α(Ni, rj) = FALSE for j != i.
  EXPECT_TRUE(policy.allowed(11, input_variable_id(11)));
  EXPECT_FALSE(policy.allowed(11, input_variable_id(12)));
  // α(B, r0) = TRUE; α(B, ri) = FALSE.
  EXPECT_TRUE(policy.allowed(99, kOutputVariableId));
  EXPECT_FALSE(policy.allowed(99, input_variable_id(11)));
  // α(n, min) = TRUE for all participants.
  for (const bgp::AsNumber n : {11u, 12u, 13u, 99u}) {
    EXPECT_TRUE(policy.allowed(n, "op:min")) << n;
  }
  // Ni must not see the chosen route.
  EXPECT_FALSE(policy.allowed(11, kOutputVariableId));
}

}  // namespace
}  // namespace pvr::rfg
