#include "rfg/operators.h"

#include <gtest/gtest.h>

#include <vector>

namespace pvr::rfg {
namespace {

[[nodiscard]] bgp::Route route_with_path(std::vector<bgp::AsNumber> hops,
                                         bgp::AsNumber next_hop = 0) {
  if (next_hop == 0 && !hops.empty()) next_hop = hops.front();
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

TEST(ExistentialOperatorTest, EmitsWhenAnyInputPresent) {
  const ExistentialOperator op;
  const std::vector<Value> inputs = {std::nullopt, route_with_path({2, 1}),
                                     std::nullopt};
  const Value out = op.apply(inputs);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path.length(), 2u);
}

TEST(ExistentialOperatorTest, NoInputNoOutput) {
  const ExistentialOperator op;
  const std::vector<Value> inputs = {std::nullopt, std::nullopt};
  EXPECT_FALSE(op.apply(inputs).has_value());
  EXPECT_FALSE(op.apply({}).has_value());
}

TEST(MinimumOperatorTest, PicksShortestPath) {
  const MinimumOperator op;
  const std::vector<Value> inputs = {route_with_path({3, 2, 1}),
                                     route_with_path({5, 1}),
                                     route_with_path({9, 8, 7, 1})};
  const Value out = op.apply(inputs);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path.length(), 2u);
  EXPECT_EQ(out->next_hop, 5u);
}

TEST(MinimumOperatorTest, TieBrokenByLowestNextHop) {
  const MinimumOperator op;
  const std::vector<Value> inputs = {route_with_path({7, 1}),
                                     route_with_path({4, 1})};
  const Value out = op.apply(inputs);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->next_hop, 4u);
}

TEST(MinimumOperatorTest, SkipsAbsentInputs) {
  const MinimumOperator op;
  const std::vector<Value> inputs = {std::nullopt, route_with_path({4, 3, 1}),
                                     std::nullopt};
  EXPECT_TRUE(op.apply(inputs).has_value());
  EXPECT_FALSE(op.apply(std::vector<Value>{std::nullopt}).has_value());
}

TEST(BgpBestOperatorTest, UsesFullDecisionProcess) {
  const BgpBestOperator op;
  bgp::Route low_pref = route_with_path({2, 1});
  low_pref.local_pref = 100;
  bgp::Route high_pref = route_with_path({5, 4, 3, 1});
  high_pref.local_pref = 200;
  const std::vector<Value> inputs = {low_pref, high_pref};
  const Value out = op.apply(inputs);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->local_pref, 200u);  // local-pref dominates length
}

TEST(PreferIfShorterOperatorTest, PrimaryWinsOnlyIfStrictlyShorter) {
  const PreferIfShorterOperator op;
  const Value primary = route_with_path({1, 9});
  const Value fallback = route_with_path({2, 8, 9});
  // primary (len 2) < fallback (len 3): primary.
  EXPECT_EQ(op.apply(std::vector<Value>{primary, fallback})->next_hop, 1u);
  // equal length: fallback.
  const Value fallback_eq = route_with_path({2, 9});
  EXPECT_EQ(op.apply(std::vector<Value>{primary, fallback_eq})->next_hop, 2u);
}

TEST(PreferIfShorterOperatorTest, HandlesAbsentOperands) {
  const PreferIfShorterOperator op;
  const Value primary = route_with_path({1, 9});
  const Value fallback = route_with_path({2, 9});
  EXPECT_EQ(op.apply(std::vector<Value>{primary, std::nullopt})->next_hop, 1u);
  EXPECT_EQ(op.apply(std::vector<Value>{std::nullopt, fallback})->next_hop, 2u);
  EXPECT_FALSE(op.apply(std::vector<Value>{std::nullopt, std::nullopt}).has_value());
  // Wrong arity is an error, not a guess.
  EXPECT_FALSE(op.apply(std::vector<Value>{primary}).has_value());
}

TEST(CommunityFilterOperatorTest, RequireAndForbid) {
  const bgp::Community c = bgp::make_community(65000, 1);
  bgp::Route tagged = route_with_path({2, 1});
  tagged.communities.push_back(c);
  const bgp::Route untagged = route_with_path({2, 1});

  const CommunityFilterOperator require(c, CommunityFilterOperator::Mode::kRequire);
  EXPECT_TRUE(require.apply(std::vector<Value>{tagged}).has_value());
  EXPECT_FALSE(require.apply(std::vector<Value>{untagged}).has_value());

  const CommunityFilterOperator forbid(c, CommunityFilterOperator::Mode::kForbid);
  EXPECT_FALSE(forbid.apply(std::vector<Value>{tagged}).has_value());
  EXPECT_TRUE(forbid.apply(std::vector<Value>{untagged}).has_value());
}

TEST(AsPathFilterOperatorTest, DropsBannedAs) {
  const AsPathFilterOperator op(666);
  EXPECT_FALSE(op.apply(std::vector<Value>{route_with_path({2, 666, 1})}).has_value());
  EXPECT_TRUE(op.apply(std::vector<Value>{route_with_path({2, 1})}).has_value());
  EXPECT_FALSE(op.apply(std::vector<Value>{std::nullopt}).has_value());
}

TEST(MaxLengthFilterOperatorTest, EnforcesBound) {
  const MaxLengthFilterOperator op(2);
  EXPECT_TRUE(op.apply(std::vector<Value>{route_with_path({2, 1})}).has_value());
  EXPECT_FALSE(op.apply(std::vector<Value>{route_with_path({3, 2, 1})}).has_value());
}

TEST(SetLocalPrefOperatorTest, RewritesAttribute) {
  const SetLocalPrefOperator op(321);
  const Value out = op.apply(std::vector<Value>{route_with_path({2, 1})});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->local_pref, 321u);
}

// Descriptor round-trip: every operator must be reconstructible from its
// descriptor, and the reconstruction must compute the same function.
TEST(DescriptorTest, RoundTripAllOperators) {
  const std::vector<std::shared_ptr<Operator>> ops = {
      std::make_shared<ExistentialOperator>(),
      std::make_shared<MinimumOperator>(),
      std::make_shared<BgpBestOperator>(),
      std::make_shared<PreferIfShorterOperator>(),
      std::make_shared<CommunityFilterOperator>(
          bgp::make_community(65000, 7), CommunityFilterOperator::Mode::kRequire),
      std::make_shared<CommunityFilterOperator>(
          bgp::make_community(65000, 7), CommunityFilterOperator::Mode::kForbid),
      std::make_shared<AsPathFilterOperator>(1234),
      std::make_shared<MaxLengthFilterOperator>(5),
      std::make_shared<SetLocalPrefOperator>(250),
  };
  const std::vector<Value> probe = {route_with_path({3, 2, 1}),
                                    route_with_path({5, 1})};
  for (const auto& op : ops) {
    const auto rebuilt = operator_from_descriptor(op->descriptor());
    ASSERT_NE(rebuilt, nullptr) << op->descriptor();
    EXPECT_EQ(rebuilt->descriptor(), op->descriptor());
    EXPECT_EQ(rebuilt->apply(probe), op->apply(probe)) << op->descriptor();
  }
}

TEST(DescriptorTest, UnknownDescriptorsRejected) {
  EXPECT_EQ(operator_from_descriptor("bogus"), nullptr);
  EXPECT_EQ(operator_from_descriptor("filter.community(x1)"), nullptr);
  EXPECT_EQ(operator_from_descriptor("filter.community(+abc)"), nullptr);
  EXPECT_EQ(operator_from_descriptor("filter.max-length()"), nullptr);
  EXPECT_EQ(operator_from_descriptor(""), nullptr);
}

TEST(DescriptorTest, CanonicalBytesBindDescriptor) {
  const MinimumOperator min_op;
  const ExistentialOperator exists_op;
  EXPECT_NE(min_op.canonical_bytes(), exists_op.canonical_bytes());
}

}  // namespace
}  // namespace pvr::rfg
