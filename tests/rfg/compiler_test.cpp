#include "rfg/compiler.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace pvr::rfg {
namespace {

const bgp::Community kBlackhole = bgp::make_community(65000, 666);

[[nodiscard]] bgp::Route make_route(std::size_t length, bgp::AsNumber next_hop,
                                    bool tagged = false, bool via_evil = false) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(via_evil && i == 1 ? 666u
                                      : static_cast<bgp::AsNumber>(8000 + i));
  }
  bgp::Route route{.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                   .path = bgp::AsPath(std::move(hops)),
                   .next_hop = next_hop,
                   .local_pref = 100,
                   .med = 0,
                   .origin = bgp::Origin::kIgp,
                   .communities = {}};
  if (tagged) route.communities.push_back(kBlackhole);
  return route;
}

[[nodiscard]] CompilerInput typical_input() {
  return CompilerInput{
      .neighbors = {11, 12, 13},
      .import_policy = bgp::RoutePolicy({
          bgp::PolicyRule{.name = "drop-blackhole",
                          .match = {.community = kBlackhole},
                          .action = {.verdict = bgp::PolicyVerdict::kReject}},
          bgp::PolicyRule{.name = "avoid-as666",
                          .match = {.as_in_path = 666},
                          .action = {.verdict = bgp::PolicyVerdict::kReject}},
          bgp::PolicyRule{.name = "prefer-11",
                          .match = {.neighbor = 11},
                          .action = {.set_local_pref = 250}},
      }),
      .selection = SelectionKind::kMinimum,
      .exported_to = 99,
  };
}

TEST(CompilerTest, CompilesTypicalPolicy) {
  const RouteFlowGraph graph = compile_policy(typical_input());
  graph.validate();
  EXPECT_EQ(graph.input_variables().size(), 3u);
  EXPECT_EQ(graph.output_variables(), std::vector<VertexId>{kOutputVariableId});
  // Neighbor 11 gets three stages (two filters + set-lp), 12/13 get two.
  EXPECT_TRUE(graph.has_operator("op:s11.2"));
  EXPECT_FALSE(graph.has_operator("op:s12.2"));
  EXPECT_EQ(graph.producer_of(kOutputVariableId), "op:select");
}

// The crown property: the compiled graph computes exactly the reference
// semantics (policy application + selection) on randomized inputs.
class CompilerEquivalence : public ::testing::TestWithParam<SelectionKind> {};

TEST_P(CompilerEquivalence, CompiledGraphMatchesReferenceSemantics) {
  CompilerInput input = typical_input();
  input.selection = GetParam();
  const RouteFlowGraph graph = compile_policy(input);

  crypto::Drbg rng(17, "compiler-equivalence");
  for (int trial = 0; trial < 200; ++trial) {
    std::map<bgp::AsNumber, Value> routes;
    std::map<VertexId, Value> graph_inputs;
    for (const bgp::AsNumber neighbor : input.neighbors) {
      Value value;
      if (rng.coin(0.8)) {
        value = make_route(1 + rng.uniform(6), neighbor,
                           /*tagged=*/rng.coin(0.3), /*via_evil=*/rng.coin(0.3));
      }
      routes[neighbor] = value;
      graph_inputs[input_variable_id(neighbor)] = value;
    }
    const Value expected = reference_semantics(input, routes);
    const Value actual = graph.evaluate(graph_inputs).at(kOutputVariableId);
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Selections, CompilerEquivalence,
                         ::testing::Values(SelectionKind::kMinimum,
                                           SelectionKind::kBgpBest,
                                           SelectionKind::kExistential));

TEST(CompilerTest, SetLocalPrefAffectsBgpBestSelection) {
  CompilerInput input = typical_input();
  input.selection = SelectionKind::kBgpBest;
  const RouteFlowGraph graph = compile_policy(input);
  // Neighbor 11's longer route should win thanks to local-pref 250.
  const auto values = graph.evaluate({
      {input_variable_id(11), make_route(5, 11)},
      {input_variable_id(12), make_route(2, 12)},
  });
  const Value& out = values.at(kOutputVariableId);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->next_hop, 11u);
  EXPECT_EQ(out->local_pref, 250u);
}

TEST(CompilerTest, FiltersDropMatchingRoutes) {
  const RouteFlowGraph graph = compile_policy(typical_input());
  // Only the tagged route is offered: everything is filtered, no export.
  const auto values = graph.evaluate({
      {input_variable_id(12), make_route(2, 12, /*tagged=*/true)},
  });
  EXPECT_FALSE(values.at(kOutputVariableId).has_value());
  // Route through AS 666 likewise.
  const auto values2 = graph.evaluate({
      {input_variable_id(13), make_route(3, 13, false, /*via_evil=*/true)},
  });
  EXPECT_FALSE(values2.at(kOutputVariableId).has_value());
}

TEST(CompilerTest, CompiledGraphImplementsPromiseShapes) {
  // With no filter rules, the compiled min graph is exactly Figure 1 and
  // passes the static promise check.
  const CompilerInput plain{
      .neighbors = {21, 22},
      .import_policy = bgp::RoutePolicy(std::vector<bgp::PolicyRule>{}),
      .selection = SelectionKind::kMinimum,
      .exported_to = 99,
  };
  const RouteFlowGraph graph = compile_policy(plain);
  EXPECT_EQ(graph.producer_of(kOutputVariableId), "op:select");
  EXPECT_EQ(graph.operator_vertex("op:select").op->descriptor(), "min");
  EXPECT_EQ(graph.operator_vertex("op:select").operands.size(), 2u);
}

// ---- Unsupported shapes are refused, not mis-compiled ----

TEST(CompilerTest, RejectsEmptyNeighborList) {
  EXPECT_THROW((void)compile_policy({.neighbors = {}}), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsDefaultRejectPolicies) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({}, bgp::PolicyVerdict::kReject);
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsMultiConditionRejectRules) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({bgp::PolicyRule{
      .name = "two-conditions",
      .match = {.as_in_path = 666, .community = kBlackhole},
      .action = {.verdict = bgp::PolicyVerdict::kReject}}});
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsConditionalAcceptRules) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({bgp::PolicyRule{
      .name = "conditional-accept",
      .match = {.community = kBlackhole},
      .action = {.verdict = bgp::PolicyVerdict::kAccept}}});
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsConditionalLocalPref) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({bgp::PolicyRule{
      .name = "conditional-lp",
      .match = {.community = kBlackhole},
      .action = {.set_local_pref = 300}}});
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsAttributeRewrites) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({bgp::PolicyRule{
      .name = "adds-community",
      .match = {},
      .action = {.add_communities = {kBlackhole}}}});
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, RejectsPrefixMatches) {
  CompilerInput input = typical_input();
  input.import_policy = bgp::RoutePolicy({bgp::PolicyRule{
      .name = "per-prefix",
      .match = {.prefix = bgp::Ipv4Prefix::parse("10.0.0.0/8")},
      .action = {.verdict = bgp::PolicyVerdict::kReject}}});
  EXPECT_THROW((void)compile_policy(input), UnsupportedPolicyError);
}

TEST(CompilerTest, NeighborScopedRulesOnlyAffectThatNeighbor) {
  const CompilerInput input{
      .neighbors = {31, 32},
      .import_policy = bgp::RoutePolicy({bgp::PolicyRule{
          .name = "drop-evil-from-31",
          .match = {.neighbor = 31, .as_in_path = 666},
          .action = {.verdict = bgp::PolicyVerdict::kReject}}}),
      .selection = SelectionKind::kMinimum,
      .exported_to = 99,
  };
  const RouteFlowGraph graph = compile_policy(input);
  // The same evil route is dropped from 31 but passes from 32.
  const auto values = graph.evaluate({
      {input_variable_id(31), make_route(3, 31, false, true)},
  });
  EXPECT_FALSE(values.at(kOutputVariableId).has_value());
  const auto values2 = graph.evaluate({
      {input_variable_id(32), make_route(3, 32, false, true)},
  });
  EXPECT_TRUE(values2.at(kOutputVariableId).has_value());
}

}  // namespace
}  // namespace pvr::rfg
