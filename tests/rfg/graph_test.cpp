#include "rfg/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pvr::rfg {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber next_hop) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(1000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

TEST(GraphTest, Figure1Shape) {
  const RouteFlowGraph graph = make_figure1_graph({11, 12, 13}, 99);
  graph.validate();
  EXPECT_EQ(graph.vertex_count(), 5u);  // 3 inputs + output + min
  EXPECT_EQ(graph.input_variables().size(), 3u);
  EXPECT_EQ(graph.output_variables(), std::vector<VertexId>{kOutputVariableId});
  EXPECT_EQ(graph.producer_of(kOutputVariableId), "op:min");
  EXPECT_EQ(graph.operator_vertex("op:min").operands.size(), 3u);
  EXPECT_EQ(graph.variable("var:r11").neighbor, 11u);
}

TEST(GraphTest, Figure1EvaluationPicksShortest) {
  const RouteFlowGraph graph = make_figure1_graph({11, 12, 13}, 99);
  const auto values = graph.evaluate({
      {input_variable_id(11), route_len(4, 11)},
      {input_variable_id(12), route_len(2, 12)},
      {input_variable_id(13), route_len(3, 13)},
  });
  const Value& out = values.at(kOutputVariableId);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->next_hop, 12u);
}

TEST(GraphTest, MissingInputsTreatedAsNoRoute) {
  const RouteFlowGraph graph = make_figure1_graph({11, 12}, 99);
  const auto values = graph.evaluate({{input_variable_id(12), route_len(5, 12)}});
  ASSERT_TRUE(values.at(kOutputVariableId).has_value());
  EXPECT_EQ(values.at(kOutputVariableId)->next_hop, 12u);

  const auto empty = graph.evaluate({});
  EXPECT_FALSE(empty.at(kOutputVariableId).has_value());
}

TEST(GraphTest, Figure2Evaluation) {
  const RouteFlowGraph graph = make_figure2_graph(1, {2, 3}, 99);
  graph.validate();
  EXPECT_EQ(graph.vertex_count(), 7u);  // 3 inputs, v, ro, min, prefer

  // Primary strictly shorter: wins.
  auto values = graph.evaluate({
      {input_variable_id(1), route_len(2, 1)},
      {input_variable_id(2), route_len(3, 2)},
      {input_variable_id(3), route_len(4, 3)},
  });
  EXPECT_EQ(values.at(kOutputVariableId)->next_hop, 1u);

  // Primary equal length: fallback (min of r2, r3) wins.
  values = graph.evaluate({
      {input_variable_id(1), route_len(3, 1)},
      {input_variable_id(2), route_len(3, 2)},
      {input_variable_id(3), route_len(4, 3)},
  });
  EXPECT_EQ(values.at(kOutputVariableId)->next_hop, 2u);
  EXPECT_EQ(values.at("var:v")->next_hop, 2u);

  // No primary: fallback.
  values = graph.evaluate({
      {input_variable_id(2), route_len(5, 2)},
  });
  EXPECT_EQ(values.at(kOutputVariableId)->next_hop, 2u);
}

TEST(GraphTest, DuplicateIdRejected) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "x", .role = VariableRole::kInput, .neighbor = 1});
  EXPECT_THROW(graph.add_variable({.id = "x"}), std::logic_error);
  EXPECT_THROW(graph.add_operator({.id = "x",
                                   .op = std::make_shared<MinimumOperator>(),
                                   .operands = {},
                                   .result = "x"}),
               std::logic_error);
}

TEST(GraphTest, ValidateCatchesUnknownOperand) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "out", .role = VariableRole::kOutput, .neighbor = 9});
  graph.add_operator({.id = "op",
                      .op = std::make_shared<MinimumOperator>(),
                      .operands = {"missing"},
                      .result = "out"});
  EXPECT_THROW(graph.validate(), std::logic_error);
}

TEST(GraphTest, ValidateCatchesDoubleProducer) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "in", .role = VariableRole::kInput, .neighbor = 1});
  graph.add_variable({.id = "out", .role = VariableRole::kOutput, .neighbor = 9});
  graph.add_operator({.id = "op1",
                      .op = std::make_shared<ExistentialOperator>(),
                      .operands = {"in"},
                      .result = "out"});
  graph.add_operator({.id = "op2",
                      .op = std::make_shared<MinimumOperator>(),
                      .operands = {"in"},
                      .result = "out"});
  EXPECT_THROW(graph.validate(), std::logic_error);
}

TEST(GraphTest, ValidateCatchesOrphanVariable) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "dangling", .role = VariableRole::kInternal});
  EXPECT_THROW(graph.validate(), std::logic_error);
}

TEST(GraphTest, ValidateCatchesWriteToInput) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "in", .role = VariableRole::kInput, .neighbor = 1});
  graph.add_operator({.id = "op",
                      .op = std::make_shared<ExistentialOperator>(),
                      .operands = {"in"},
                      .result = "in"});
  EXPECT_THROW(graph.validate(), std::logic_error);
}

TEST(GraphTest, ValidateCatchesCycle) {
  RouteFlowGraph graph;
  graph.add_variable({.id = "a", .role = VariableRole::kInternal});
  graph.add_variable({.id = "b", .role = VariableRole::kInternal});
  graph.add_operator({.id = "op-a",
                      .op = std::make_shared<ExistentialOperator>(),
                      .operands = {"b"},
                      .result = "a"});
  graph.add_operator({.id = "op-b",
                      .op = std::make_shared<ExistentialOperator>(),
                      .operands = {"a"},
                      .result = "b"});
  EXPECT_THROW(graph.validate(), std::logic_error);
}

TEST(GraphTest, PredecessorsAndSuccessors) {
  const RouteFlowGraph graph = make_figure2_graph(1, {2, 3}, 99);
  // Operator vertices: preds = operands, succs = result.
  EXPECT_EQ(graph.predecessors("op:min"),
            (std::vector<VertexId>{"var:r2", "var:r3"}));
  EXPECT_EQ(graph.successors("op:min"), std::vector<VertexId>{"var:v"});
  // Variable vertices: preds = producer, succs = consumers.
  EXPECT_EQ(graph.predecessors("var:v"), std::vector<VertexId>{"op:min"});
  EXPECT_EQ(graph.successors("var:v"), std::vector<VertexId>{"op:prefer"});
  EXPECT_TRUE(graph.predecessors("var:r1").empty());
  EXPECT_EQ(graph.successors(kOutputVariableId).size(), 0u);
}

TEST(GraphTest, DeepPipelineEvaluates) {
  // input -> filter(max-length 3) -> set local-pref -> output
  RouteFlowGraph graph;
  graph.add_variable({.id = "in", .role = VariableRole::kInput, .neighbor = 1});
  graph.add_variable({.id = "mid", .role = VariableRole::kInternal});
  graph.add_variable({.id = "out", .role = VariableRole::kOutput, .neighbor = 9});
  graph.add_operator({.id = "op:filter",
                      .op = std::make_shared<MaxLengthFilterOperator>(3),
                      .operands = {"in"},
                      .result = "mid"});
  graph.add_operator({.id = "op:setlp",
                      .op = std::make_shared<SetLocalPrefOperator>(777),
                      .operands = {"mid"},
                      .result = "out"});
  graph.validate();

  auto values = graph.evaluate({{"in", route_len(2, 1)}});
  ASSERT_TRUE(values.at("out").has_value());
  EXPECT_EQ(values.at("out")->local_pref, 777u);

  values = graph.evaluate({{"in", route_len(9, 1)}});
  EXPECT_FALSE(values.at("out").has_value());  // filtered out
}

}  // namespace
}  // namespace pvr::rfg
