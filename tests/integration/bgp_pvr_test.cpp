// Integration: PVR piggybacked on a converged BGP network (the deployment
// story of §3.8/§4), plus global properties of the BGP substrate itself.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "bgp/speaker.h"
#include "core/min_protocol.h"

namespace pvr {
namespace {

const bgp::Ipv4Prefix kPrefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

struct ConvergedWorld {
  bgp::AsGraph graph;
  std::unique_ptr<net::Simulator> sim;

  explicit ConvergedWorld(std::size_t as_count, std::uint64_t seed) {
    crypto::Drbg rng(seed, "bgp-pvr-topo");
    graph = bgp::generate_gao_rexford(
        {.as_count = as_count, .tier1_count = 4}, rng);
    sim = std::make_unique<net::Simulator>(seed);
    const bgp::AsNumber origin = static_cast<bgp::AsNumber>(as_count);
    for (const bgp::AsNumber asn : graph.as_numbers()) {
      bgp::SpeakerConfig config{.asn = asn, .graph = &graph};
      if (asn == origin) config.originated = {kPrefix};
      sim->add_node(asn, std::make_unique<bgp::BgpSpeaker>(std::move(config)));
    }
    for (const bgp::AsNumber asn : graph.as_numbers()) {
      for (const bgp::AsNumber neighbor : graph.neighbors(asn)) {
        if (asn < neighbor) sim->connect(asn, neighbor, {.latency = 1500});
      }
    }
    sim->run();
  }

  [[nodiscard]] bgp::BgpSpeaker& speaker(bgp::AsNumber asn) {
    return dynamic_cast<bgp::BgpSpeaker&>(sim->node(asn));
  }
};

// Gao–Rexford safety: every selected path is valley-free — once the path
// goes "down" (provider->customer) or "sideways" (peer), it never goes
// "up" (customer->provider) or sideways again.
TEST(BgpGlobalProperties, ConvergedPathsAreValleyFree) {
  ConvergedWorld world(60, 3);
  for (const bgp::AsNumber asn : world.graph.as_numbers()) {
    const auto best = world.speaker(asn).best(kPrefix);
    if (!best.has_value()) continue;
    // Walk the path from this AS toward the origin; classify each edge
    // from the perspective of the AS closer to this one.
    std::vector<bgp::AsNumber> walk = {asn};
    for (const bgp::AsNumber hop : best->path.hops()) walk.push_back(hop);
    // In travel order (origin -> asn) the exports must match
    // (to-provider)* (to-peer)? (to-customer)*. We walk in REVERSE travel
    // order, so the legal pattern is (to-customer)* (to-peer)?
    // (to-provider)*: once a non-customer export is seen, every remaining
    // (earlier-in-travel) export must be to-provider.
    bool past_customer_phase = false;
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto rel = world.graph.relationship(walk[i], walk[i + 1]);
      ASSERT_TRUE(rel.has_value())
          << "path uses a non-existent link " << walk[i] << "-" << walk[i + 1];
      // walk[i] learned the route FROM walk[i+1]; from the exporter
      // walk[i+1]'s view, the export went to `reverse(*rel)`.
      const bgp::Relationship export_to = bgp::reverse(*rel);
      if (past_customer_phase) {
        EXPECT_EQ(export_to, bgp::Relationship::kProvider)
            << "valley in path of AS" << asn << ": " << best->path.to_string();
      } else if (export_to != bgp::Relationship::kCustomer) {
        past_customer_phase = true;  // the single peer edge or first uphill
      }
    }
  }
}

TEST(BgpGlobalProperties, NoForwardingLoopsInSelectedPaths) {
  ConvergedWorld world(60, 4);
  for (const bgp::AsNumber asn : world.graph.as_numbers()) {
    const auto best = world.speaker(asn).best(kPrefix);
    if (!best.has_value()) continue;
    std::set<bgp::AsNumber> seen;
    for (const bgp::AsNumber hop : best->path.hops()) {
      EXPECT_TRUE(seen.insert(hop).second)
          << "AS" << hop << " appears twice in " << best->path.to_string();
    }
    EXPECT_FALSE(best->path.contains(asn));
  }
}

TEST(BgpGlobalProperties, ConvergenceIsDeterministic) {
  ConvergedWorld a(40, 9);
  ConvergedWorld b(40, 9);
  for (const bgp::AsNumber asn : a.graph.as_numbers()) {
    EXPECT_EQ(a.speaker(asn).best(kPrefix), b.speaker(asn).best(kPrefix));
  }
  EXPECT_EQ(a.sim->stats().messages_sent, b.sim->stats().messages_sent);
}

// The §3.8 deployment: after convergence, a transit AS runs a PVR round
// over its actual Adj-RIB-In; all its neighbors verify cleanly, and the
// exported route equals the BGP decision (shortest among equal local-pref
// candidates by the minimum operator's criterion).
TEST(BgpPvrIntegration, PvrRoundOverRealRibInVerifiesCleanly) {
  ConvergedWorld world(60, 5);

  // Find the AS with the most candidates.
  bgp::AsNumber prover = 0;
  std::size_t most = 0;
  for (const bgp::AsNumber asn : world.graph.as_numbers()) {
    const std::size_t count = world.speaker(asn).candidates(kPrefix).size();
    if (count > most) {
      most = count;
      prover = asn;
    }
  }
  ASSERT_GE(most, 2u);

  std::vector<bgp::AsNumber> participants = world.graph.neighbors(prover);
  participants.push_back(prover);
  crypto::Drbg key_rng(5, "bgp-pvr-keys");
  const core::AsKeyPairs keys = core::generate_keys(participants, key_rng, 512);

  const core::ProtocolId id{.prover = prover, .prefix = kPrefix, .epoch = 1};
  std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
  std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
  for (const bgp::Route& route : world.speaker(prover).candidates(kPrefix)) {
    const core::InputAnnouncement announcement{
        .id = id, .provider = route.next_hop, .route = route};
    announcements.emplace(route.next_hop, announcement);
    inputs[route.next_hop] = core::sign_message(
        route.next_hop, keys.private_keys.at(route.next_hop).priv,
        announcement.encode());
  }

  crypto::Drbg rng(6, "bgp-pvr-round");
  const core::ProverResult result =
      core::run_prover(id, core::OperatorKind::kMinimum, inputs, 16,
                       keys.private_keys.at(prover).priv, rng, {});

  // All providers and one recipient verify with zero findings.
  for (const auto& [provider, announcement] : announcements) {
    const auto it = result.provider_reveals.find(provider);
    const auto evidence = core::verify_as_provider(
        keys.directory, provider, announcement, result.signed_bundle,
        it == result.provider_reveals.end() ? nullptr : &it->second);
    EXPECT_TRUE(evidence.empty()) << evidence.front().to_string();
  }
  const auto evidence = core::verify_as_recipient(
      keys.directory, participants.front(), result.signed_bundle,
      &result.recipient_reveal, &result.export_statement);
  EXPECT_TRUE(evidence.empty()) << evidence.front().to_string();

  // The protocol's honest output is a shortest candidate.
  ASSERT_TRUE(result.honest_output.has_value());
  std::size_t min_len = ~std::size_t{0};
  for (const bgp::Route& route : world.speaker(prover).candidates(kPrefix)) {
    min_len = std::min(min_len, route.path.length());
  }
  EXPECT_EQ(result.honest_output->path.length(), min_len);
}

}  // namespace
}  // namespace pvr
