// Failure injection: PVR under message loss, and gossip flooding behavior.
//
// PVR's liveness checks (missing bundle / missing reveal) must fire when
// the network eats protocol messages, and must never accuse anyone in a
// third-party-provable way (the fault could be the network's).
//
// Rounds here are finalized through engine::VerificationEngine — the
// default verification path for simulator-driven rounds (sequential
// finalize_round is the fallback, covered by tests/core/pvr_node_test).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "engine/verification_engine.h"
#include "net/gossip.h"

namespace pvr::core {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                                   const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

TEST(LossyNetworkTest, TotalLossYieldsOnlyLivenessFindings) {
  Figure1Handles handles = make_figure1_world({.seed = 31});
  Figure1World& world = *handles.world;

  // Sever every link from the prover AFTER inputs are sent, so the bundle
  // and reveals never arrive.
  world.sim.schedule(0, [&] {
    const std::vector<std::size_t> lengths = {4, 2, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.schedule(5'000, [&] {  // after inputs (1 ms) but before the
                                   // prover's 10 ms collection window ends
    for (const bgp::AsNumber provider : world.providers) {
      world.sim.disconnect(world.prover, provider);
    }
    world.sim.disconnect(world.prover, world.recipient);
  });
  // The prover will throw when sending on severed links; that is the
  // simulator's contract. Swallow it via a scheduled runner instead: the
  // round is driven by the prover's timer, so run and catch.
  try {
    world.sim.run();
  } catch (const std::logic_error&) {
    // expected: prover tried to send on a severed link
  }

  engine::VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  engine::finalize_world_round(engine, world, handles.round_id(1));

  const Auditor auditor(&handles.keys->directory);
  for (const bgp::AsNumber provider : world.providers) {
    const auto& evidence = world.node(provider).evidence();
    // Each provider that sent a route and heard nothing reports a liveness
    // fault; none of it is third-party provable.
    ASSERT_FALSE(evidence.empty());
    for (const Evidence& item : evidence) {
      EXPECT_EQ(item.kind, ViolationKind::kMissingReveal);
      EXPECT_FALSE(auditor.validate(item));
    }
  }
}

TEST(LossyNetworkTest, GossipStillCatchesEquivocationWithPartialMesh) {
  // Remove most verifier-mesh links; as long as the verifier gossip graph
  // stays connected, equivocation is still caught by everyone.
  Figure1Setup setup{.seed = 32, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;

  // Reduce the mesh to a line: N1-N2-N3-N4-B.
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (std::size_t i = 0; i < verifiers.size(); ++i) {
    for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
      if (j != i + 1) world.sim.disconnect(verifiers[i], verifiers[j]);
    }
  }

  world.sim.schedule(0, [&] {
    const std::vector<std::size_t> lengths = {3, 4, 5, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  engine::VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  engine::finalize_world_round(engine, world, handles.round_id(1));

  std::size_t detectors = 0;
  for (const bgp::AsNumber verifier : verifiers) {
    const auto& evidence = world.node(verifier).evidence();
    if (std::any_of(evidence.begin(), evidence.end(), [](const Evidence& e) {
          return e.kind == ViolationKind::kEquivocation;
        })) {
      detectors += 1;
    }
  }
  // The line topology relays both bundles to every verifier.
  EXPECT_EQ(detectors, verifiers.size());
}

TEST(LossyNetworkTest, HonestRoundSurvivesDuplicateDelivery) {
  // Gossip naturally causes each verifier to see the same bundle many
  // times; duplicates must not trigger false equivocation findings.
  Figure1Handles handles = make_figure1_world({.seed = 33, .provider_count = 5});
  Figure1World& world = *handles.world;
  world.sim.schedule(0, [&] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(2 + i, world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  engine::VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  engine::finalize_world_round(engine, world, handles.round_id(1));

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    EXPECT_TRUE(world.node(verifier).evidence().empty());
  }
  // Flooding terminated (no infinite gossip storm).
  EXPECT_LT(world.sim.stats().messages_sent, 1000u);
}

}  // namespace
}  // namespace pvr::core
