// Adversarial-input robustness: every wire decoder in the system must
// either parse or throw std::out_of_range — never crash, hang, or silently
// misparse — when fed Byzantine bytes. This backs the threat model (§3):
// "an unknown subset of the networks ... can behave arbitrarily".
#include <gtest/gtest.h>

#include "baseline/sbgp.h"
#include "bgp/messages.h"
#include "core/graph_commitment.h"
#include "core/min_protocol.h"
#include "crypto/drbg.h"
#include "net/gossip.h"

namespace pvr {
namespace {

// Applies `decode` to random buffers and truncated/bit-flipped versions of
// `valid`; the only acceptable outcomes are success or std::out_of_range.
template <typename DecodeFn>
void expect_robust(DecodeFn decode, const std::vector<std::uint8_t>& valid,
                   crypto::Drbg& rng) {
  // 1. Pure random buffers of assorted sizes.
  for (const std::size_t size : {0u, 1u, 3u, 16u, 64u, 300u}) {
    const auto junk = rng.bytes(size);
    try {
      decode(junk);
    } catch (const std::out_of_range&) {
    }
  }
  // 2. Every truncation of a valid message.
  for (std::size_t cut = 0; cut < valid.size(); cut += 1 + valid.size() / 37) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      decode(truncated);
    } catch (const std::out_of_range&) {
    }
  }
  // 3. Single-byte corruptions of a valid message.
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> corrupted = valid;
    if (corrupted.empty()) break;
    corrupted[rng.uniform(corrupted.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      decode(corrupted);
    } catch (const std::out_of_range&) {
    }
  }
}

[[nodiscard]] bgp::Route sample_route() {
  return bgp::Route{.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                    .path = bgp::AsPath{2, 1},
                    .next_hop = 2,
                    .local_pref = 100,
                    .med = 5,
                    .origin = bgp::Origin::kEgp,
                    .communities = {bgp::make_community(65000, 1)}};
}

[[nodiscard]] core::ProtocolId sample_id() {
  return {.prover = 7,
          .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
          .epoch = 3};
}

TEST(DecoderRobustness, BgpUpdate) {
  crypto::Drbg rng(1, "fuzz-bgp");
  const bgp::BgpUpdate update{.withdraw = false,
                              .prefix = sample_route().prefix,
                              .route = sample_route()};
  expect_robust([](const auto& b) { (void)bgp::BgpUpdate::decode(b); },
                update.encode(), rng);
}

TEST(DecoderRobustness, SignedMessage) {
  crypto::Drbg rng(2, "fuzz-signed");
  const core::SignedMessage message{.signer = 9,
                                    .payload = {1, 2, 3},
                                    .signature = rng.bytes(64)};
  expect_robust([](const auto& b) { (void)core::SignedMessage::decode(b); },
                message.encode(), rng);
}

TEST(DecoderRobustness, InputAnnouncement) {
  crypto::Drbg rng(3, "fuzz-input");
  const core::InputAnnouncement announcement{
      .id = sample_id(), .provider = 11, .route = sample_route()};
  expect_robust([](const auto& b) { (void)core::InputAnnouncement::decode(b); },
                announcement.encode(), rng);
}

TEST(DecoderRobustness, CommitmentBundle) {
  crypto::Drbg rng(4, "fuzz-bundle");
  core::CommitmentBundle bundle{
      .id = sample_id(), .op = core::OperatorKind::kMinimum, .max_len = 4,
      .bits = {}};
  for (int i = 0; i < 4; ++i) {
    bundle.bits.push_back(crypto::commit_bit(i % 2 == 0, rng).first);
  }
  expect_robust([](const auto& b) { (void)core::CommitmentBundle::decode(b); },
                bundle.encode(), rng);
}

TEST(DecoderRobustness, Reveals) {
  crypto::Drbg rng(5, "fuzz-reveals");
  const auto [commitment, opening] = crypto::commit_bit(true, rng);
  const core::RevealToProvider to_provider{
      .id = sample_id(), .provider = 11, .bit_index = 1, .opening = opening};
  expect_robust([](const auto& b) { (void)core::RevealToProvider::decode(b); },
                to_provider.encode(), rng);

  const core::RevealToRecipient to_recipient{.id = sample_id(),
                                             .openings = {opening, opening}};
  expect_robust([](const auto& b) { (void)core::RevealToRecipient::decode(b); },
                to_recipient.encode(), rng);
}

TEST(DecoderRobustness, ExportStatement) {
  crypto::Drbg rng(6, "fuzz-export");
  core::ExportStatement statement{.id = sample_id(),
                                  .has_route = true,
                                  .route = sample_route(),
                                  .provenance = core::SignedMessage{
                                      .signer = 2,
                                      .payload = {9, 9},
                                      .signature = rng.bytes(64)}};
  expect_robust([](const auto& b) { (void)core::ExportStatement::decode(b); },
                statement.encode(), rng);
}

TEST(DecoderRobustness, GraphRootAnnouncement) {
  crypto::Drbg rng(7, "fuzz-root");
  const core::GraphRootAnnouncement announcement{
      .id = sample_id(), .root = crypto::sha256("root")};
  expect_robust(
      [](const auto& b) { (void)core::GraphRootAnnouncement::decode(b); },
      announcement.encode(), rng);
}

TEST(DecoderRobustness, SbgpAttestation) {
  crypto::Drbg rng(8, "fuzz-sbgp");
  const baseline::Attestation attestation{
      .prefix = sample_route().prefix, .signer = 1, .to = 2, .suffix = {1}};
  expect_robust([](const auto& b) { (void)baseline::Attestation::decode(b); },
                attestation.encode(), rng);
}

TEST(DecoderRobustness, GossipAnnouncement) {
  crypto::Drbg rng(9, "fuzz-gossip");
  expect_robust([](const auto& b) { (void)net::decode_gossip(b); },
                net::encode_gossip("topic", {1, 2, 3}), rng);
}

// The verifier entry points must likewise survive adversarial envelopes:
// random bytes in place of every protocol message yield (at most) findings,
// never crashes.
TEST(DecoderRobustness, VerifiersSurviveGarbageEnvelopes) {
  crypto::Drbg key_rng(10, "fuzz-verifier-keys");
  const core::AsKeyPairs keys = core::generate_keys({1, 2, 11}, key_rng, 512);
  crypto::Drbg rng(11, "fuzz-verifier");

  for (int trial = 0; trial < 20; ++trial) {
    const core::SignedMessage garbage{
        .signer = 1,
        .payload = rng.bytes(rng.uniform(200)),
        .signature = rng.bytes(64),
    };
    const auto provider_findings = core::verify_as_provider(
        keys.directory, 11,
        core::InputAnnouncement{.id = sample_id(), .provider = 11,
                                .route = sample_route()},
        garbage, &garbage);
    EXPECT_FALSE(provider_findings.empty());  // at least bad-signature
    const auto recipient_findings = core::verify_as_recipient(
        keys.directory, 2, garbage, &garbage, &garbage);
    EXPECT_FALSE(recipient_findings.empty());
    EXPECT_FALSE(core::check_equivocation(keys.directory, 11, garbage, garbage)
                     .has_value());
  }
}

}  // namespace
}  // namespace pvr
