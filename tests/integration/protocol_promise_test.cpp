// Property suite tying the PVR protocol to the promise semantics of §2:
//
//   For randomized inputs and an honest prover, the exported route always
//   satisfies Promise::holds (soundness of the honest prover), and no
//   verifier finds anything (Accuracy).
//
//   For randomized inputs and a prover that semantically violates the
//   promise, at least one verifier detects (Detection) — the protocol's
//   checks are complete with respect to the promise, not just against the
//   specific misbehavior strategies hard-coded in run_prover.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/evidence.h"
#include "core/min_protocol.h"
#include "core/promise.h"

namespace pvr::core {
namespace {

constexpr bgp::AsNumber kProver = 1;
constexpr bgp::AsNumber kRecipient = 2;
constexpr std::uint32_t kMaxLen = 10;

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(9000 + i));
  }
  return bgp::Route{.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

class ProtocolPromiseProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(4242, "protocol-promise-keys");
    keys_ = new AsKeyPairs(
        generate_keys({kProver, kRecipient, 101, 102, 103, 104}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static const AsKeyPairs& keys() { return *keys_; }

 private:
  static AsKeyPairs* keys_;
};

AsKeyPairs* ProtocolPromiseProperty::keys_ = nullptr;

struct RandomRound {
  ProtocolId id;
  std::map<bgp::AsNumber, std::optional<SignedMessage>> inputs;
  std::map<bgp::AsNumber, InputAnnouncement> announcements;
  Promise::Inputs semantic_inputs;
  std::set<bgp::AsNumber> providers;
};

[[nodiscard]] RandomRound make_round(const AsKeyPairs& keys, crypto::Drbg& rng,
                                     std::uint64_t epoch) {
  RandomRound round;
  round.id = {.prover = kProver,
              .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
              .epoch = epoch};
  for (const bgp::AsNumber provider : {101u, 102u, 103u, 104u}) {
    round.providers.insert(provider);
    if (!rng.coin(0.75)) {
      round.inputs[provider] = std::nullopt;
      round.semantic_inputs[provider] = std::nullopt;
      continue;
    }
    const std::size_t length = 1 + rng.uniform(kMaxLen);
    const InputAnnouncement announcement{
        .id = round.id, .provider = provider, .route = route_len(length, provider)};
    round.announcements.emplace(provider, announcement);
    round.semantic_inputs[provider] = announcement.route;
    round.inputs[provider] = sign_message(
        provider, keys.private_keys.at(provider).priv, announcement.encode());
  }
  return round;
}

[[nodiscard]] std::vector<Evidence> verify_all(const AsKeyPairs& keys,
                                               const RandomRound& round,
                                               const ProverResult& result) {
  std::vector<Evidence> all;
  for (const bgp::AsNumber provider : round.providers) {
    const auto announcement = round.announcements.find(provider);
    const auto reveal = result.provider_reveals.find(provider);
    auto found = verify_as_provider(
        keys.directory, provider,
        announcement == round.announcements.end()
            ? std::nullopt
            : std::optional(announcement->second),
        result.signed_bundle,
        reveal == result.provider_reveals.end() ? nullptr : &reveal->second);
    all.insert(all.end(), found.begin(), found.end());
  }
  auto found = verify_as_recipient(keys.directory, kRecipient,
                                   result.signed_bundle,
                                   &result.recipient_reveal,
                                   &result.export_statement);
  all.insert(all.end(), found.begin(), found.end());
  return all;
}

// Extracts the semantic output (the input route that was exported, i.e. the
// exported route with the prover's prepended hop removed).
[[nodiscard]] std::optional<bgp::Route> semantic_output(
    const ProverResult& result) {
  const ExportStatement statement =
      ExportStatement::decode(result.export_statement.payload);
  if (!statement.has_route || !statement.provenance.has_value()) {
    return std::nullopt;
  }
  return InputAnnouncement::decode(statement.provenance->payload).route;
}

TEST_P(ProtocolPromiseProperty, HonestProverSatisfiesPromiseAndPassesChecks) {
  crypto::Drbg rng(GetParam(), "honest-rounds");
  const Promise promise{.type = PromiseType::kShortestOfSubset,
                        .subset = {101, 102, 103, 104}};
  for (std::uint64_t epoch = 1; epoch <= 20; ++epoch) {
    const RandomRound round = make_round(keys(), rng, epoch);
    const ProverResult result =
        run_prover(round.id, OperatorKind::kMinimum, round.inputs, kMaxLen,
                   keys().private_keys.at(kProver).priv, rng, {});
    // Soundness: the honest export satisfies the §2 promise semantics.
    EXPECT_TRUE(promise.holds(round.semantic_inputs, semantic_output(result)))
        << "epoch " << epoch;
    // Accuracy: nobody detects anything.
    const auto evidence = verify_all(keys(), round, result);
    EXPECT_TRUE(evidence.empty())
        << "epoch " << epoch << ": " << evidence.front().to_string();
  }
}

TEST_P(ProtocolPromiseProperty, SemanticViolationsAreAlwaysDetected) {
  crypto::Drbg rng(GetParam() + 1000, "byzantine-rounds");
  const Promise promise{.type = PromiseType::kShortestOfSubset,
                        .subset = {101, 102, 103, 104}};
  const ProverMisbehavior strategies[] = {
      {.export_nonminimal = true},
      {.export_nonminimal = true, .bits_match_lie = true},
      {.suppress_export = true},
      {.fabricate_route = true},
  };
  int violating_rounds = 0;
  for (std::uint64_t epoch = 1; epoch <= 40; ++epoch) {
    const RandomRound round = make_round(keys(), rng, epoch);
    const ProverMisbehavior& strategy =
        strategies[rng.uniform(std::size(strategies))];
    const ProverResult result =
        run_prover(round.id, OperatorKind::kMinimum, round.inputs, kMaxLen,
                   keys().private_keys.at(kProver).priv, rng, strategy);

    // Ground truth: did the prover actually violate the promise this round?
    // (A "lie" that coincides with the honest answer is not a violation.)
    const bool violated =
        !promise.holds(round.semantic_inputs, semantic_output(result));
    if (!violated) continue;
    violating_rounds += 1;
    const auto evidence = verify_all(keys(), round, result);
    EXPECT_FALSE(evidence.empty())
        << "epoch " << epoch << ": semantic violation went undetected";
  }
  // The strategies and 75%-provide probability make real violations common.
  EXPECT_GT(violating_rounds, 10);
}

// Detection is complete even against a "smart" adversary that bypasses
// run_prover's canned strategies: here the prover hand-crafts a consistent
// transcript around an arbitrary chosen output. If the output is not the
// minimum, some check must fire regardless of how the bits were chosen.
TEST_P(ProtocolPromiseProperty, HandCraftedTranscriptsCannotCheatTheMinimum) {
  crypto::Drbg rng(GetParam() + 2000, "handcrafted");
  for (int trial = 0; trial < 10; ++trial) {
    const RandomRound round = make_round(keys(), rng, 500 + trial);
    if (round.announcements.size() < 2) continue;

    // Adversary picks a NON-minimal provider to export, then builds bits
    // that are any monotone vector of its choice.
    const auto minimum = std::min_element(
        round.announcements.begin(), round.announcements.end(),
        [](const auto& a, const auto& b) {
          return a.second.route.path.length() < b.second.route.path.length();
        });
    const auto victim = std::max_element(
        round.announcements.begin(), round.announcements.end(),
        [](const auto& a, const auto& b) {
          return a.second.route.path.length() < b.second.route.path.length();
        });
    if (minimum->second.route.path.length() ==
        victim->second.route.path.length()) {
      continue;  // vacuous round
    }

    // Try both bit strategies: honest bits, and bits matching the lie.
    for (const bool forge_bits : {false, true}) {
      const ProverMisbehavior strategy{
          .export_nonminimal = true, .bits_match_lie = forge_bits};
      const ProverResult result =
          run_prover(round.id, OperatorKind::kMinimum, round.inputs, kMaxLen,
                     keys().private_keys.at(kProver).priv, rng, strategy);
      const auto evidence = verify_all(keys(), round, result);
      ASSERT_FALSE(evidence.empty()) << "forge_bits=" << forge_bits;
      // And the evidence (when of a safety kind) convinces the auditor.
      const Auditor auditor(&keys().directory);
      const bool any_provable = std::any_of(
          evidence.begin(), evidence.end(),
          [&](const Evidence& e) { return auditor.validate(e); });
      EXPECT_TRUE(any_provable) << "forge_bits=" << forge_bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolPromiseProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pvr::core
