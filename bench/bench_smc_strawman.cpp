// Experiment E3 (paper §3.1): the SMC strawman vs PVR.
//
// "Even with only five players, state-of-the-art SMC systems take about 15
// seconds of computation time for a simple task like voting, and such a
// task would have to be performed for every single BGP update."
//
// Both systems compute/verify the same function — the minimum of k
// providers' path lengths — under the same threat model. SMC costs are the
// measured GMW share arithmetic plus modeled WAN latency (rounds x RTT,
// the dominant term for interactive MPC); PVR costs are fully measured.
// We do not expect the paper's absolute 15 s (different machines, and
// FairplayMP's BMR protocol is far heavier than our dealer-assisted GMW);
// the claim being reproduced is the ordering and the 2-3+ order-of-magnitude
// gap, growing with the number of players and circuit depth. With a real
// (dealer-free, OT-based) SMC the gap widens back toward the paper's ~4
// orders.
#include <chrono>
#include <cstdio>

#include "baseline/smc/gmw.h"
#include "bench_common.h"

namespace pvr::bench {
namespace {

constexpr std::uint32_t kMaxLen = 16;   // path-length domain (bits of input)
constexpr std::size_t kWidth = 5;       // bits to encode a length <= 16
constexpr double kWanRtt = 0.1;         // 100 ms RTT between ASes

struct Row {
  std::size_t parties;
  double pvr_ms;
  double smc_cpu_ms;
  double smc_modeled_s;
  std::size_t smc_rounds;
  std::size_t smc_and_gates;
  std::size_t smc_bytes;
};

[[nodiscard]] Row run_comparison(std::size_t parties) {
  Row row{};
  row.parties = parties;

  // --- PVR: full prover round + both verifier roles, measured. ---
  const Fig1Instance& instance = fig1_instance(parties, 1024, kMaxLen);
  crypto::Drbg rng(parties, "smc-strawman-pvr");
  const auto t0 = std::chrono::steady_clock::now();
  const core::ProverResult result = core::run_prover(
      instance.id, core::OperatorKind::kMinimum, instance.inputs, kMaxLen,
      instance.keys.private_keys.at(1).priv, rng, {});
  for (const bgp::AsNumber provider : instance.providers) {
    const auto it = result.provider_reveals.find(provider);
    (void)core::verify_as_provider(
        instance.keys.directory, provider, instance.announcements.at(provider),
        result.signed_bundle,
        it == result.provider_reveals.end() ? nullptr : &it->second);
  }
  (void)core::verify_as_recipient(instance.keys.directory, 2,
                                  result.signed_bundle, &result.recipient_reveal,
                                  &result.export_statement);
  row.pvr_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();

  // --- SMC: GMW over the equivalent minimum circuit. ---
  const baseline::smc::Circuit circuit =
      baseline::smc::build_minimum_circuit(parties, kWidth);
  std::vector<bool> inputs;
  crypto::Drbg smc_rng(parties, "smc-strawman-gmw");
  for (std::size_t p = 0; p < parties; ++p) {
    const std::uint64_t value = 1 + smc_rng.uniform(kMaxLen);
    for (std::size_t b = 0; b < kWidth; ++b) inputs.push_back((value >> b) & 1);
  }
  const baseline::smc::GmwResult gmw =
      baseline::smc::gmw_evaluate(circuit, inputs, parties, smc_rng);
  row.smc_cpu_ms = gmw.stats.cpu_seconds * 1000.0;
  row.smc_modeled_s = gmw.stats.modeled_seconds(kWanRtt);
  row.smc_rounds = gmw.stats.rounds;
  row.smc_and_gates = gmw.stats.and_gates;
  row.smc_bytes = gmw.stats.bytes;
  return row;
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;
  const BenchArgs args = parse_bench_args(&argc, argv);
  std::printf("E3: SMC strawman (GMW, %zu-bit inputs, %.0f ms WAN RTT) vs PVR\n",
              kWidth, kWanRtt * 1000);
  std::printf("%-8s %-12s %-12s %-14s %-8s %-10s %-10s %-10s\n", "parties",
              "pvr_ms", "smc_cpu_ms", "smc_wall_s", "rounds", "and_gates",
              "smc_bytes", "ratio");
  for (const std::size_t parties : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const Row row = run_comparison(parties);
    const double ratio = row.smc_modeled_s * 1000.0 / row.pvr_ms;
    std::printf("%-8zu %-12.2f %-12.3f %-14.2f %-8zu %-10zu %-10zu %-10.0fx\n",
                row.parties, row.pvr_ms, row.smc_cpu_ms, row.smc_modeled_s,
                row.smc_rounds, row.smc_and_gates, row.smc_bytes, ratio);
  }
  std::printf("\nshape check (paper: SMC ~15 s for 5 players; PVR a few ms):\n");
  const Row five = run_comparison(5);
  std::printf("  5 players: PVR %.1f ms vs SMC %.1f s modeled wall clock "
              "(%.0fx slower)\n",
              five.pvr_ms, five.smc_modeled_s,
              five.smc_modeled_s * 1000.0 / five.pvr_ms);
  std::printf("{\"bench\":\"smc_strawman\",\"seed\":%llu,"
              "\"pvr_ms_5p\":%.2f,\"smc_modeled_s_5p\":%.2f}\n",
              static_cast<unsigned long long>(args.seed), five.pvr_ms,
              five.smc_modeled_s);
  pvr::bench::emit_obs_snapshot("smc_strawman");
  return 0;
}
