// Experiment E6 (paper §3.6): the sparse Merkle tree behind commitment and
// selective disclosure — build cost, proof generation, proof verification,
// and proof size as the number of instantiated vertices grows.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "crypto/drbg.h"
#include "crypto/sparse_merkle.h"

namespace pvr::crypto {
namespace {

[[nodiscard]] SparseMerkleTree build_tree(std::size_t entries) {
  Drbg rng(entries, "bench-smt");
  SparseMerkleTree tree(rng.bytes(32));
  for (std::size_t i = 0; i < entries; ++i) {
    tree.insert(SparseMerkleTree::key_for_label("vertex:" + std::to_string(i)),
                sha256("payload:" + std::to_string(i)));
  }
  return tree;
}

void BM_Smt_Root(benchmark::State& state) {
  const SparseMerkleTree tree = build_tree(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_Smt_Root)
    ->Arg(2)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Smt_Prove(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  const SparseMerkleTree tree = build_tree(entries);
  const Digest key = SparseMerkleTree::key_for_label("vertex:0");
  std::size_t proof_bytes = 0;
  for (auto _ : state) {
    const SparseDisclosureProof proof = tree.prove(key);
    benchmark::DoNotOptimize(proof);
    proof_bytes = proof.byte_size();
  }
  state.counters["proof_bytes"] = static_cast<double>(proof_bytes);
}
BENCHMARK(BM_Smt_Prove)
    ->Arg(2)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Smt_Verify(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  const SparseMerkleTree tree = build_tree(entries);
  const Digest key = SparseMerkleTree::key_for_label("vertex:0");
  const Digest root = tree.root();
  const Digest value = sha256("payload:0");
  const SparseDisclosureProof proof = tree.prove(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseMerkleTree::verify(root, value, proof));
  }
}
BENCHMARK(BM_Smt_Verify)
    ->Arg(2)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Smt_Insert(benchmark::State& state) {
  Drbg rng(9, "bench-smt-insert");
  SparseMerkleTree tree(rng.bytes(32));
  std::size_t i = 0;
  for (auto _ : state) {
    tree.insert(SparseMerkleTree::key_for_label("v" + std::to_string(i++)),
                sha256("p"));
  }
}
BENCHMARK(BM_Smt_Insert);

}  // namespace
}  // namespace pvr::crypto

PVR_GBENCH_MAIN("mht_disclosure")
