// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "core/keys.h"
#include "core/min_protocol.h"
#include "core/pvr_speaker.h"
#include "obs/metrics.h"

namespace pvr::bench {

// Every bench accepts --seed=N (and --rounds=N where it makes sense) and
// records the seed in each JSON line it emits, so any BENCH_*.json row can
// be reproduced from the file alone.
struct BenchArgs {
  std::uint64_t seed = 1;
  std::optional<std::size_t> rounds;
};

// The seed the current bench process runs under (set by parse_bench_args;
// fixtures fold it into their DRBG seeds).
[[nodiscard]] inline std::uint64_t& bench_seed() {
  static std::uint64_t seed = 1;
  return seed;
}

// Parses and REMOVES --seed / --rounds from argv, so flag parsers that run
// afterwards (benchmark::Initialize rejects flags it does not know) never
// see them. Unknown flags are left in place. A malformed value exits with
// an error: a typo silently falling back to the default seed would label
// the emitted rows with a seed that did not produce them.
[[nodiscard]] inline BenchArgs parse_bench_args(int* argc, char** argv) {
  BenchArgs args;
  const auto parse_or_die = [](const char* text, const char* flag,
                               bool allow_zero) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || (!allow_zero && value == 0)) {
      std::fprintf(stderr, "bench: bad %s value '%s'\n", flag, text);
      std::exit(2);
    }
    return static_cast<std::uint64_t>(value);
  };
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      args.seed = parse_or_die(argv[i] + 7, "--seed", true);
    } else if (arg == "--seed") {
      if (i + 1 >= *argc) parse_or_die("", "--seed", true);  // bare flag: die
      args.seed = parse_or_die(argv[++i], "--seed", true);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      args.rounds = parse_or_die(argv[i] + 9, "--rounds", false);
    } else if (arg == "--rounds") {
      if (i + 1 >= *argc) parse_or_die("", "--rounds", false);
      args.rounds = parse_or_die(argv[++i], "--rounds", false);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;  // keep the argv[argc] == NULL guarantee intact
  bench_seed() = args.seed;
  return args;
}

// Emits the process-wide metrics snapshot as one JSON row, tagged with the
// bench that produced it — the `obs_snapshot` row bench/run_all.sh requires
// from every bench so BENCH_*.json carries the counters alongside the
// bench's own rows. Printed in both obs build flavors (all-zero counters
// under -DPVR_OBS=OFF keep the run_all.sh contract build-independent).
inline void emit_obs_snapshot(const char* bench_name) {
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  std::printf("{\"bench\":\"obs_snapshot\",\"source\":\"%s\",\"seed\":%llu,"
              "\"obs_enabled\":%s,%s}\n",
              bench_name, static_cast<unsigned long long>(bench_seed()),
              obs::kCompiledIn ? "true" : "false",
              snapshot.to_json_fields().c_str());
}

// Shared main for the Google-Benchmark benches: strips --seed (which
// benchmark::Initialize would reject) before the benchmark flag parser
// runs, then emits the one JSON row bench/run_all.sh requires from every
// bench, carrying the seed for reproducibility. Expanding this macro means
// the bench provides its own main — CMake links only benchmark::benchmark
// for it, not benchmark_main.
#define PVR_GBENCH_MAIN(name)                                       \
  int main(int argc, char** argv) {                                 \
    const pvr::bench::BenchArgs args =                              \
        pvr::bench::parse_bench_args(&argc, argv);                  \
    benchmark::Initialize(&argc, argv);                             \
    benchmark::RunSpecifiedBenchmarks();                            \
    benchmark::Shutdown();                                          \
    std::printf("{\"bench\":\"" name "\",\"seed\":%llu}\n",         \
                static_cast<unsigned long long>(args.seed));        \
    pvr::bench::emit_obs_snapshot(name);                            \
    return 0;                                                       \
  }

// The canonical neighborhood check used by the experiment harnesses: every
// announcing provider verifies its reveal, every recipient verifies the
// reveal + export. One shared definition keeps the sequential and
// engine-backed measurement paths comparing identical work.
[[nodiscard]] inline core::RoundFindings verify_neighborhood(
    const core::KeyDirectory& directory, const core::ProverResult& result,
    const std::map<bgp::AsNumber, core::InputAnnouncement>& announcements,
    const std::vector<bgp::AsNumber>& recipients) {
  core::RoundFindings findings;
  for (const auto& [provider, announcement] : announcements) {
    const auto it = result.provider_reveals.find(provider);
    auto found = core::verify_as_provider(
        directory, provider, announcement, result.signed_bundle,
        it == result.provider_reveals.end() ? nullptr : &it->second);
    findings.evidence.insert(findings.evidence.end(), found.begin(),
                             found.end());
  }
  for (const bgp::AsNumber recipient : recipients) {
    auto found = core::verify_as_recipient(directory, recipient,
                                           result.signed_bundle,
                                           &result.recipient_reveal,
                                           &result.export_statement);
    findings.evidence.insert(findings.evidence.end(), found.begin(),
                             found.end());
  }
  return findings;
}

[[nodiscard]] inline bgp::Route route_len(std::size_t length,
                                          bgp::AsNumber origin_as) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(50000 + i));
  }
  return bgp::Route{.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// A cached Figure-1 protocol instance: prover AS 1, providers 1001..1000+k,
// recipient 2. Key generation is expensive, so instances are memoized per
// (provider count, key bits, seed).
struct Fig1Instance {
  core::AsKeyPairs keys;
  core::ProtocolId id;
  std::vector<bgp::AsNumber> providers;
  std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
  std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
};

[[nodiscard]] inline const Fig1Instance& fig1_instance(std::size_t provider_count,
                                                       std::size_t key_bits,
                                                       std::uint32_t max_len) {
  static std::map<std::tuple<std::size_t, std::size_t, std::uint32_t,
                             std::uint64_t>,
                  Fig1Instance>
      cache;
  const std::uint64_t seed = bench_seed();
  const auto key = std::tuple{provider_count, key_bits, max_len, seed};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  Fig1Instance instance;
  std::vector<bgp::AsNumber> all = {1, 2};
  for (std::size_t i = 0; i < provider_count; ++i) {
    instance.providers.push_back(1001 + static_cast<bgp::AsNumber>(i));
    all.push_back(instance.providers.back());
  }
  crypto::Drbg key_rng(provider_count * 131 + key_bits + seed,
                       "bench-fig1-keys");
  instance.keys = core::generate_keys(all, key_rng, key_bits);
  instance.id = {.prover = 1,
                 .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
                 .epoch = 1};

  crypto::Drbg len_rng(7 + seed, "bench-fig1-lengths");
  for (const bgp::AsNumber provider : instance.providers) {
    const std::size_t length = 1 + len_rng.uniform(max_len);
    const core::InputAnnouncement announcement{
        .id = instance.id, .provider = provider, .route = route_len(length, provider)};
    instance.announcements.emplace(provider, announcement);
    instance.inputs[provider] = core::sign_message(
        provider, instance.keys.private_keys.at(provider).priv,
        announcement.encode());
  }
  return cache.emplace(key, std::move(instance)).first->second;
}

}  // namespace pvr::bench
