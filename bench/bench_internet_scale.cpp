// Experiment E8 (paper §1, §3.8, §4): end-to-end feasibility at AS scale.
//
// For growing Gao–Rexford topologies: run BGP to convergence on the
// simulated network, then have EVERY transit AS (one with >= 2 candidate
// routes for the monitored prefix) execute one PVR minimum round over its
// real Adj-RIB-In and its neighbors verify. Reports BGP convergence cost,
// total/mean PVR crypto time, and PVR wire overhead relative to BGP.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "bgp/speaker.h"
#include "engine/verification_engine.h"

namespace pvr::bench {
namespace {

struct ScaleRow {
  std::size_t as_count = 0;
  std::size_t links = 0;
  std::uint64_t bgp_updates = 0;
  std::uint64_t bgp_bytes = 0;
  std::size_t provers = 0;
  double pvr_total_ms = 0;
  double pvr_mean_ms = 0;
  std::size_t pvr_bytes = 0;
  double verify_total_ms = 0;
  std::size_t violations = 0;
  // Engine-backed verification of the same rounds (8 workers).
  double engine_verify_ms = 0;
  std::size_t engine_violations = 0;
};

[[nodiscard]] ScaleRow run_scale(std::size_t as_count, std::size_t key_bits) {
  ScaleRow row;
  row.as_count = as_count;
  const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

  crypto::Drbg topo_rng(as_count, "scale-topo");
  const bgp::AsGraph graph = bgp::generate_gao_rexford(
      {.as_count = as_count, .tier1_count = 5, .extra_provider_probability = 0.3},
      topo_rng);
  row.links = graph.link_count();

  net::Simulator sim(1);
  const bgp::AsNumber origin = static_cast<bgp::AsNumber>(as_count);
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    bgp::SpeakerConfig config{.asn = asn, .graph = &graph};
    if (asn == origin) config.originated = {prefix};
    sim.add_node(asn, std::make_unique<bgp::BgpSpeaker>(std::move(config)));
  }
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    for (const bgp::AsNumber neighbor : graph.neighbors(asn)) {
      if (asn < neighbor) sim.connect(asn, neighbor, {.latency = 2000});
    }
  }
  sim.run();
  row.bgp_updates = sim.stats().messages_sent;
  row.bgp_bytes = sim.stats().bytes_sent;

  crypto::Drbg key_rng(11, "scale-keys");
  const core::AsKeyPairs keys =
      core::generate_keys(graph.as_numbers(), key_rng, key_bits);

  // One entry per prover round, kept so the same verification work can be
  // replayed through the engine afterwards.
  struct ProverRound {
    bgp::AsNumber prover;
    core::ProtocolId id;
    core::ProverResult result;
    std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
    std::vector<bgp::AsNumber> customers;
  };
  std::vector<ProverRound> prover_rounds;

  crypto::Drbg round_rng(13, "scale-rounds");
  for (const bgp::AsNumber prover : graph.as_numbers()) {
    auto& speaker = dynamic_cast<bgp::BgpSpeaker&>(sim.node(prover));
    const std::vector<bgp::Route> candidates = speaker.candidates(prefix);
    if (candidates.size() < 2) continue;  // nothing to promise about
    row.provers += 1;

    const core::ProtocolId id{.prover = prover, .prefix = prefix, .epoch = 1};
    std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
    std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
    for (const bgp::Route& route : candidates) {
      if (route.path.length() > 16) continue;
      const core::InputAnnouncement announcement{
          .id = id, .provider = route.next_hop, .route = route};
      announcements.emplace(route.next_hop, announcement);
      inputs[route.next_hop] = core::sign_message(
          route.next_hop, keys.private_keys.at(route.next_hop).priv,
          announcement.encode());
    }

    const auto t0 = std::chrono::steady_clock::now();
    const core::ProverResult result =
        core::run_prover(id, core::OperatorKind::kMinimum, inputs, 16,
                         keys.private_keys.at(prover).priv, round_rng, {});
    row.pvr_total_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    row.pvr_bytes += result.signed_bundle.encode().size() +
                     result.recipient_reveal.encode().size() +
                     result.export_statement.encode().size();
    for (const auto& [provider, reveal] : result.provider_reveals) {
      row.pvr_bytes += reveal.encode().size();
    }

    ProverRound round{.prover = prover,
                      .id = id,
                      .result = result,
                      .announcements = announcements,
                      .customers = graph.customers_of(prover)};

    const auto t1 = std::chrono::steady_clock::now();
    row.violations += verify_neighborhood(keys.directory, round.result,
                                          round.announcements, round.customers)
                          .evidence.size();
    row.verify_total_ms += std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t1)
                               .count();

    prover_rounds.push_back(std::move(round));
  }
  if (row.provers > 0) row.pvr_mean_ms = row.pvr_total_ms / row.provers;

  // Engine-backed path: the same per-neighborhood checks, sharded across a
  // worker pool. One submitted round per prover neighborhood.
  engine::VerificationEngine engine({.workers = 8}, &keys.directory);
  const auto t2 = std::chrono::steady_clock::now();
  for (const ProverRound& round : prover_rounds) {
    engine.submit(round.id, [&round, &keys] {
      return verify_neighborhood(keys.directory, round.result,
                                 round.announcements, round.customers);
    });
  }
  const engine::EngineReport report = engine.drain();
  row.engine_verify_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t2)
                             .count();
  row.engine_violations = report.violations;
  return row;
}

}  // namespace
}  // namespace pvr::bench

int main() {
  using namespace pvr;
  using namespace pvr::bench;
  std::printf("E8: PVR piggybacked on BGP over Gao-Rexford topologies "
              "(RSA-1024)\n\n");
  std::printf("%-8s %-7s %-12s %-11s %-8s %-13s %-12s %-11s %-11s %-6s "
              "%-10s %-6s\n",
              "ASes", "links", "bgp_updates", "bgp_bytes", "provers",
              "pvr_total_ms", "pvr_mean_ms", "pvr_bytes", "verify_ms", "viol",
              "engine_ms", "eviol");
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    const ScaleRow row = run_scale(n, 1024);
    std::printf("%-8zu %-7zu %-12llu %-11llu %-8zu %-13.1f %-12.2f %-11zu "
                "%-11.1f %-6zu %-10.1f %-6zu\n",
                row.as_count, row.links,
                static_cast<unsigned long long>(row.bgp_updates),
                static_cast<unsigned long long>(row.bgp_bytes), row.provers,
                row.pvr_total_ms, row.pvr_mean_ms, row.pvr_bytes,
                row.verify_total_ms, row.violations, row.engine_verify_ms,
                row.engine_violations);
  }
  std::printf("\nexpected shape: per-AS PVR cost stays a few ms (a handful of\n"
              "signatures, §3.8) independent of topology size; wire overhead\n"
              "grows linearly with the number of verifying neighborhoods;\n"
              "0 violations with honest speakers.\n");
  return 0;
}
