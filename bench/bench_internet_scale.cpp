// Experiment E8 (paper §1, §3.8, §4): end-to-end feasibility at AS scale.
//
// For growing Gao–Rexford topologies: run BGP to convergence on the
// simulated network, then have EVERY transit AS (one with >= 2 candidate
// routes for the monitored prefix) execute one PVR minimum round over its
// real Adj-RIB-In and its neighbors verify. Reports BGP convergence cost,
// total/mean PVR crypto time, and PVR wire overhead relative to BGP.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "bgp/speaker.h"
#include "core/pvr_speaker.h"
#include "engine/verification_engine.h"

namespace pvr::bench {
namespace {

struct ScaleRow {
  std::size_t as_count = 0;
  std::size_t links = 0;
  std::uint64_t bgp_updates = 0;
  std::uint64_t bgp_bytes = 0;
  std::size_t provers = 0;
  double pvr_total_ms = 0;
  double pvr_mean_ms = 0;
  std::size_t pvr_bytes = 0;
  double verify_total_ms = 0;
  std::size_t violations = 0;
  // Engine-backed verification of the same rounds (8 workers).
  double engine_verify_ms = 0;
  std::size_t engine_violations = 0;
};

[[nodiscard]] ScaleRow run_scale(std::size_t as_count, std::size_t key_bits,
                                 std::uint64_t seed) {
  ScaleRow row;
  row.as_count = as_count;
  const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

  crypto::Drbg topo_rng(as_count + seed, "scale-topo");
  const bgp::AsGraph graph = bgp::generate_gao_rexford(
      {.as_count = as_count, .tier1_count = 5, .extra_provider_probability = 0.3},
      topo_rng);
  row.links = graph.link_count();

  net::Simulator sim(1 + seed);
  const bgp::AsNumber origin = static_cast<bgp::AsNumber>(as_count);
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    bgp::SpeakerConfig config{.asn = asn, .graph = &graph};
    if (asn == origin) config.originated = {prefix};
    sim.add_node(asn, std::make_unique<bgp::BgpSpeaker>(std::move(config)));
  }
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    for (const bgp::AsNumber neighbor : graph.neighbors(asn)) {
      if (asn < neighbor) sim.connect(asn, neighbor, {.latency = 2000});
    }
  }
  sim.run();
  row.bgp_updates = sim.stats().messages_sent;
  row.bgp_bytes = sim.stats().bytes_sent;

  crypto::Drbg key_rng(11 + seed, "scale-keys");
  const core::AsKeyPairs keys =
      core::generate_keys(graph.as_numbers(), key_rng, key_bits);

  // One entry per prover round, kept so the same verification work can be
  // replayed through the engine afterwards.
  struct ProverRound {
    bgp::AsNumber prover;
    core::ProtocolId id;
    core::ProverResult result;
    std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
    std::vector<bgp::AsNumber> customers;
  };
  std::vector<ProverRound> prover_rounds;

  crypto::Drbg round_rng(13 + seed, "scale-rounds");
  for (const bgp::AsNumber prover : graph.as_numbers()) {
    auto& speaker = dynamic_cast<bgp::BgpSpeaker&>(sim.node(prover));
    const std::vector<bgp::Route> candidates = speaker.candidates(prefix);
    if (candidates.size() < 2) continue;  // nothing to promise about
    row.provers += 1;

    const core::ProtocolId id{.prover = prover, .prefix = prefix, .epoch = 1};
    std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
    std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
    for (const bgp::Route& route : candidates) {
      if (route.path.length() > 16) continue;
      const core::InputAnnouncement announcement{
          .id = id, .provider = route.next_hop, .route = route};
      announcements.emplace(route.next_hop, announcement);
      inputs[route.next_hop] = core::sign_message(
          route.next_hop, keys.private_keys.at(route.next_hop).priv,
          announcement.encode());
    }

    const auto t0 = std::chrono::steady_clock::now();
    const core::ProverResult result =
        core::run_prover(id, core::OperatorKind::kMinimum, inputs, 16,
                         keys.private_keys.at(prover).priv, round_rng, {});
    row.pvr_total_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    row.pvr_bytes += result.signed_bundle.encode().size() +
                     result.recipient_reveal.encode().size() +
                     result.export_statement.encode().size();
    for (const auto& [provider, reveal] : result.provider_reveals) {
      row.pvr_bytes += reveal.encode().size();
    }

    ProverRound round{.prover = prover,
                      .id = id,
                      .result = result,
                      .announcements = announcements,
                      .customers = graph.customers_of(prover)};

    const auto t1 = std::chrono::steady_clock::now();
    row.violations += verify_neighborhood(keys.directory, round.result,
                                          round.announcements, round.customers)
                          .evidence.size();
    row.verify_total_ms += std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t1)
                               .count();

    prover_rounds.push_back(std::move(round));
  }
  if (row.provers > 0) row.pvr_mean_ms = row.pvr_total_ms / row.provers;

  // Engine-backed path: the same per-neighborhood checks, sharded across a
  // worker pool. One submitted round per prover neighborhood.
  engine::VerificationEngine engine({.workers = 8}, &keys.directory);
  const auto t2 = std::chrono::steady_clock::now();
  for (const ProverRound& round : prover_rounds) {
    engine.submit(round.id, [&round, &keys] {
      return verify_neighborhood(keys.directory, round.result,
                                 round.announcements, round.customers);
    });
  }
  const engine::EngineReport report = engine.drain();
  row.engine_verify_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t2)
                             .count();
  row.engine_violations = report.violations;
  return row;
}

// ---- Wire-mode comparison: aggregated bundles + root gossip vs legacy ----
//
// A Figure-1 neighborhood pushes `kWirePrefixes` concurrent rounds through
// one epoch window over the simulated network. In legacy mode every
// per-prefix signed bundle is sent AND gossiped in full across the
// verifier mesh; in aggregated mode (the default) the prover sends one
// signed Merkle root plus per-prefix openings (pvr.bundle.agg) and the
// mesh gossips only the small signed roots (pvr.gossip.root).

constexpr std::size_t kWireProviders = 6;
constexpr std::size_t kWirePrefixes = 12;

struct WireRow {
  std::uint64_t bundle_msgs = 0;   // direct bundle-path messages
  std::uint64_t bundle_bytes = 0;
  std::uint64_t gossip_msgs = 0;   // mesh gossip messages
  std::uint64_t gossip_bytes = 0;
  std::uint64_t violations = 0;
  [[nodiscard]] std::uint64_t total_bytes() const {
    return bundle_bytes + gossip_bytes;
  }
};

[[nodiscard]] bgp::Route wire_route(std::size_t length, bgp::AsNumber origin_as,
                                    const bgp::Ipv4Prefix& prefix) {
  bgp::Route route = route_len(length, origin_as);
  route.prefix = prefix;
  return route;
}

[[nodiscard]] WireRow run_wire_mode(bool aggregate, std::uint64_t seed) {
  core::Figure1Setup setup{.seed = 77 + seed,
                           .provider_count = kWireProviders};
  setup.aggregate_wire_bundles = aggregate;
  core::Figure1Handles handles = core::make_figure1_world(setup);
  core::Figure1World& world = *handles.world;

  std::vector<bgp::Ipv4Prefix> prefixes;
  for (std::size_t p = 0; p < kWirePrefixes; ++p) {
    prefixes.emplace_back(0xCB007100u + (static_cast<std::uint32_t>(p) << 8), 24);
  }
  world.sim.schedule(0, [&world, &prefixes] {
    for (std::size_t p = 0; p < prefixes.size(); ++p) {
      for (std::size_t i = 0; i < world.providers.size(); ++i) {
        world.node(world.providers[i])
            .provide_input(world.sim.transport(), 1, prefixes[p],
                           wire_route(2 + (p + i) % 6, world.providers[i],
                                      prefixes[p]));
      }
      world.node(world.prover).start_round(world.sim.transport(), 1, prefixes[p]);
    }
  });
  world.sim.run();

  // Submit every prefix round before one drain so distinct prefixes run on
  // distinct shards concurrently.
  engine::VerificationEngine engine({.workers = 8}, &handles.keys->directory);
  for (const bgp::Ipv4Prefix& prefix : prefixes) {
    engine::submit_world_round(
        engine, world,
        core::ProtocolId{.prover = world.prover, .prefix = prefix, .epoch = 1});
  }
  WireRow row;
  row.violations = engine.drain().violations;

  const auto bundle_stats = world.sim.stats().channel_group(
      aggregate ? core::kBundleAggChannel : core::kBundleChannel);
  const auto gossip_stats = world.sim.stats().channel_group(
      aggregate ? core::kGossipRootChannel : core::kGossipChannel);
  row.bundle_msgs = bundle_stats.messages_sent;
  row.bundle_bytes = bundle_stats.bytes_sent;
  row.gossip_msgs = gossip_stats.messages_sent;
  row.gossip_bytes = gossip_stats.bytes_sent;
  return row;
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;
  const BenchArgs args = parse_bench_args(&argc, argv);
  std::printf("E8: PVR piggybacked on BGP over Gao-Rexford topologies "
              "(RSA-1024)\n\n");
  std::printf("%-8s %-7s %-12s %-11s %-8s %-13s %-12s %-11s %-11s %-6s "
              "%-10s %-6s\n",
              "ASes", "links", "bgp_updates", "bgp_bytes", "provers",
              "pvr_total_ms", "pvr_mean_ms", "pvr_bytes", "verify_ms", "viol",
              "engine_ms", "eviol");
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    const ScaleRow row = run_scale(n, 1024, args.seed);
    std::printf("%-8zu %-7zu %-12llu %-11llu %-8zu %-13.1f %-12.2f %-11zu "
                "%-11.1f %-6zu %-10.1f %-6zu\n",
                row.as_count, row.links,
                static_cast<unsigned long long>(row.bgp_updates),
                static_cast<unsigned long long>(row.bgp_bytes), row.provers,
                row.pvr_total_ms, row.pvr_mean_ms, row.pvr_bytes,
                row.verify_total_ms, row.violations, row.engine_verify_ms,
                row.engine_violations);
  }
  std::printf("\nexpected shape: per-AS PVR cost stays a few ms (a handful of\n"
              "signatures, §3.8) independent of topology size; wire overhead\n"
              "grows linearly with the number of verifying neighborhoods;\n"
              "0 violations with honest speakers.\n");

  // ---- Aggregated wire mode vs legacy full-bundle gossip -------------------
  std::printf("\nbundle wire modes: %zu providers, %zu concurrent prefixes, "
              "one epoch window\n",
              static_cast<std::size_t>(pvr::bench::kWireProviders),
              static_cast<std::size_t>(pvr::bench::kWirePrefixes));
  std::printf("%-11s %-12s %-13s %-12s %-13s %-12s %-6s\n", "mode",
              "bundle_msgs", "bundle_bytes", "gossip_msgs", "gossip_bytes",
              "total_bytes", "viol");
  const WireRow legacy = run_wire_mode(false, args.seed);
  const WireRow aggregated = run_wire_mode(true, args.seed);
  const auto print_row = [](const char* mode, const WireRow& row) {
    std::printf("%-11s %-12llu %-13llu %-12llu %-13llu %-12llu %-6llu\n", mode,
                static_cast<unsigned long long>(row.bundle_msgs),
                static_cast<unsigned long long>(row.bundle_bytes),
                static_cast<unsigned long long>(row.gossip_msgs),
                static_cast<unsigned long long>(row.gossip_bytes),
                static_cast<unsigned long long>(row.total_bytes()),
                static_cast<unsigned long long>(row.violations));
  };
  print_row("per-prefix", legacy);
  print_row("aggregated", aggregated);
  const double gossip_reduction =
      aggregated.gossip_bytes == 0
          ? 0.0
          : static_cast<double>(legacy.gossip_bytes) /
                static_cast<double>(aggregated.gossip_bytes);
  const double total_reduction =
      aggregated.total_bytes() == 0
          ? 0.0
          : static_cast<double>(legacy.total_bytes()) /
                static_cast<double>(aggregated.total_bytes());
  std::printf("root gossip cuts mesh gossip bytes %.1fx and total bundle-path "
              "bytes %.1fx\n",
              gossip_reduction, total_reduction);
  std::printf("{\"bench\":\"internet_scale\",\"seed\":%llu,"
              "\"wire_prefixes\":%zu,"
              "\"legacy_bundle_path_bytes\":%llu,"
              "\"agg_bundle_path_bytes\":%llu,"
              "\"gossip_byte_reduction\":%.2f,"
              "\"total_byte_reduction\":%.2f,\"violations\":%llu}\n",
              static_cast<unsigned long long>(args.seed),
              static_cast<std::size_t>(pvr::bench::kWirePrefixes),
              static_cast<unsigned long long>(legacy.total_bytes()),
              static_cast<unsigned long long>(aggregated.total_bytes()),
              gossip_reduction, total_reduction,
              static_cast<unsigned long long>(legacy.violations +
                                              aggregated.violations));
  pvr::bench::emit_obs_snapshot("internet_scale");
  return legacy.violations + aggregated.violations == 0 ? 0 : 1;
}
