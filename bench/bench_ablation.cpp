// Ablations for the design choices called out in DESIGN.md §7:
//
//  A. Bit-vector commitments (§3.3: k separate hash commitments b_1..b_L)
//     vs a single flat MHT over the bit leaves. The paper chose separate
//     commitments; the MHT trades commitment size for per-bit proof size.
//  B. Blinded sparse MHT (occupancy-hiding, §3.6) vs a flat MHT over the
//     instantiated vertices only. The flat tree's proofs are log(n)·32 B
//     but leak how many vertices exist and where; the sparse tree pays a
//     fixed 256·32 B per proof for structural privacy.
//  C. Ring signature (link-state variant of §3.2) vs plain RSA signature:
//     the cost of hiding *which* neighbor signed.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "crypto/commitment.h"
#include "crypto/merkle.h"
#include "crypto/ring_signature.h"
#include "crypto/sparse_merkle.h"

namespace pvr::crypto {
namespace {

// --- Ablation A ---

void BM_AblationA_SeparateBitCommitments(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Drbg rng(1, "ablation-a1");
  std::size_t commitment_bytes = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < bits; ++i) {
      benchmark::DoNotOptimize(commit_bit(i % 2 == 0, rng));
    }
    commitment_bytes = bits * kSha256DigestSize;
  }
  // Publishing: L digests; revealing one bit: 1 opening (33 bytes).
  state.counters["publish_bytes"] = static_cast<double>(commitment_bytes);
  state.counters["reveal_one_bytes"] = 1.0 + kCommitNonceSize;
}
BENCHMARK(BM_AblationA_SeparateBitCommitments)->Arg(8)->Arg(32)->Arg(128);

void BM_AblationA_MhtOverBits(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Drbg rng(2, "ablation-a2");
  std::vector<std::vector<std::uint8_t>> leaves(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    leaves[i] = {static_cast<std::uint8_t>(i % 2)};
    const auto nonce = rng.bytes(kCommitNonceSize);
    leaves[i].insert(leaves[i].end(), nonce.begin(), nonce.end());
  }
  std::size_t reveal_bytes = 0;
  for (auto _ : state) {
    const MerkleTree tree = MerkleTree::build(leaves);
    benchmark::DoNotOptimize(tree.root());
    const MerkleProof proof = tree.prove(bits / 2);
    reveal_bytes = leaves[bits / 2].size() +
                   proof.siblings.size() * kSha256DigestSize;
  }
  // Publishing: one digest; revealing one bit: leaf + log(L) siblings.
  state.counters["publish_bytes"] = kSha256DigestSize;
  state.counters["reveal_one_bytes"] = static_cast<double>(reveal_bytes);
}
BENCHMARK(BM_AblationA_MhtOverBits)->Arg(8)->Arg(32)->Arg(128);

// --- Ablation B ---

void BM_AblationB_FlatTreeProof(benchmark::State& state) {
  const std::size_t vertices = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::uint8_t>> leaves(vertices);
  for (std::size_t i = 0; i < vertices; ++i) {
    const Digest digest = sha256("vertex:" + std::to_string(i));
    leaves[i].assign(digest.begin(), digest.end());
  }
  const MerkleTree tree = MerkleTree::build(leaves);
  std::size_t proof_bytes = 0;
  for (auto _ : state) {
    const MerkleProof proof = tree.prove(0);
    benchmark::DoNotOptimize(proof);
    proof_bytes = proof.siblings.size() * kSha256DigestSize;
  }
  state.counters["proof_bytes"] = static_cast<double>(proof_bytes);
  state.counters["hides_occupancy"] = 0;
}
BENCHMARK(BM_AblationB_FlatTreeProof)->Arg(8)->Arg(64)->Arg(512);

void BM_AblationB_SparseBlindedProof(benchmark::State& state) {
  const std::size_t vertices = static_cast<std::size_t>(state.range(0));
  Drbg rng(3, "ablation-b");
  SparseMerkleTree tree(rng.bytes(32));
  for (std::size_t i = 0; i < vertices; ++i) {
    tree.insert(SparseMerkleTree::key_for_label("vertex:" + std::to_string(i)),
                sha256("p"));
  }
  const Digest key = SparseMerkleTree::key_for_label("vertex:0");
  std::size_t proof_bytes = 0;
  for (auto _ : state) {
    const SparseDisclosureProof proof = tree.prove(key);
    benchmark::DoNotOptimize(proof);
    proof_bytes = proof.byte_size();
  }
  state.counters["proof_bytes"] = static_cast<double>(proof_bytes);
  state.counters["hides_occupancy"] = 1;
}
BENCHMARK(BM_AblationB_SparseBlindedProof)
    ->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// --- Ablation C ---

struct RingFixture {
  std::vector<RsaKeyPair> keys;
  std::vector<RsaPublicKey> ring;
};

const RingFixture& ring_fixture(std::size_t members) {
  static std::map<std::size_t, RingFixture> cache;
  const auto it = cache.find(members);
  if (it != cache.end()) return it->second;
  RingFixture fixture;
  Drbg rng(members, "ablation-c-keys");
  for (std::size_t i = 0; i < members; ++i) {
    fixture.keys.push_back(generate_rsa_keypair(1024, rng));
    fixture.ring.push_back(fixture.keys.back().pub);
  }
  return cache.emplace(members, std::move(fixture)).first->second;
}

void BM_AblationC_PlainSignature(benchmark::State& state) {
  const RingFixture& fixture = ring_fixture(2);
  Drbg rng(4, "ablation-c1");
  const std::vector<std::uint8_t> message = {'a', ' ', 'r', 'o', 'u', 't',
                                             'e', ' ', 'e', 'x', 'i', 's',
                                             't', 's'};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(fixture.keys[0].priv, message));
  }
  state.counters["sig_bytes"] = 128;
  state.counters["signer_hidden"] = 0;
}
BENCHMARK(BM_AblationC_PlainSignature)->Unit(benchmark::kMillisecond);

void BM_AblationC_RingSignature(benchmark::State& state) {
  const std::size_t members = static_cast<std::size_t>(state.range(0));
  const RingFixture& fixture = ring_fixture(members);
  Drbg rng(5, "ablation-c2");
  const std::vector<std::uint8_t> message = {'a', ' ', 'r', 'o', 'u', 't',
                                             'e', ' ', 'e', 'x', 'i', 's',
                                             't', 's'};
  std::size_t sig_bytes = 0;
  for (auto _ : state) {
    const RingSignature sig =
        ring_sign(fixture.ring, 0, fixture.keys[0].priv, message, rng);
    benchmark::DoNotOptimize(sig);
    sig_bytes = sig.byte_size();
  }
  state.counters["sig_bytes"] = static_cast<double>(sig_bytes);
  state.counters["signer_hidden"] = 1;
}
BENCHMARK(BM_AblationC_RingSignature)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AblationC_RingVerify(benchmark::State& state) {
  const std::size_t members = static_cast<std::size_t>(state.range(0));
  const RingFixture& fixture = ring_fixture(members);
  Drbg rng(6, "ablation-c3");
  const std::vector<std::uint8_t> message = {'x'};
  const RingSignature sig =
      ring_sign(fixture.ring, 0, fixture.keys[0].priv, message, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_verify(fixture.ring, message, sig));
  }
}
BENCHMARK(BM_AblationC_RingVerify)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pvr::crypto

PVR_GBENCH_MAIN("ablation")
