// Experiment E4 (paper §3.8 "Overhead"): the primitive costs the paper's
// feasibility argument rests on — "the most expensive operations we have
// used are a cryptographic hash-function (such as SHA-256), which are
// relatively cheap, and a public-key signature scheme (such as RSA). A
// RSA-1024 signature takes about two milliseconds on current hardware."
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "crypto/commitment.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace pvr::crypto {
namespace {

const RsaKeyPair& rsa_key(std::size_t bits) {
  static std::map<std::size_t, RsaKeyPair> cache;
  const auto it = cache.find(bits);
  if (it != cache.end()) return it->second;
  Drbg rng(bits, "bench-overhead-keys");
  return cache.emplace(bits, generate_rsa_keypair(bits, rng)).first->second;
}

void BM_Sha256(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Drbg rng(1, "bench-sha");
  const std::vector<std::uint8_t> data = rng.bytes(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Drbg rng(2, "bench-hmac");
  const std::vector<std::uint8_t> key = rng.bytes(32);
  const std::vector<std::uint8_t> data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_BitCommitment(benchmark::State& state) {
  Drbg rng(3, "bench-commit");
  for (auto _ : state) {
    benchmark::DoNotOptimize(commit_bit(true, rng));
  }
}
BENCHMARK(BM_BitCommitment);

void BM_CommitmentVerify(benchmark::State& state) {
  Drbg rng(4, "bench-commit-verify");
  const auto [commitment, opening] = commit_bit(true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_commitment(commitment, opening));
  }
}
BENCHMARK(BM_CommitmentVerify);

void BM_RsaSign(benchmark::State& state) {
  const RsaKeyPair& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  Drbg rng(5, "bench-sign");
  const std::vector<std::uint8_t> message = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(key.priv, message));
  }
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  const RsaKeyPair& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  Drbg rng(6, "bench-verify");
  const std::vector<std::uint8_t> message = rng.bytes(256);
  const auto signature = rsa_sign(key.priv, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(key.pub, message, signature));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048);

void BM_RsaKeygen(benchmark::State& state) {
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    Drbg rng(seed++, "bench-keygen");
    benchmark::DoNotOptimize(generate_rsa_keypair(
        static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(1024)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace pvr::crypto

PVR_GBENCH_MAIN("overhead")
