#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench_results.jsonl against the
committed baseline trajectory (BENCH_pr*.json) and fail CI when the sweep
regressed.

Rules (exit 1 on any violation):
  1. every per-bench metadata line in the fresh run ({"bench": ..., "ok": ...})
     must carry ok == true — a crashing bench is a regression by itself;
  2. the fresh engine_throughput row must report deterministic == true
     (Evidence diverged across worker counts / sharding modes — a
     correctness failure, not a perf number);
  3. every throughput field listed in THROUGHPUT_KEYS that appears in BOTH
     the baseline and the fresh engine_throughput rows must not drop more
     than --max-regression (default 25%);
  4. every adversarial scenario row ({"bench": "scenarios", ...}) must
     report detection_rate == 1.0, false_evidence == 0, and
     verify_failures == 0 (an attack the shipped evidence checks miss, an
     honest AS framed, or a verification task that crashed and was
     swallowed, is a correctness failure), and every
     {"bench": "scenarios_gate"} row must carry deterministic == true,
     online_parity == true (the online pipeline reproduced the offline
     fingerprint byte-for-byte), and gates_ok == true;
  5. when the fresh run contains a scenarios sweep at all, it must cover at
     least the three named scenarios — a silently shrinking matrix would
     pass rule 4 vacuously;
  6. the fresh run must carry the online long-trace row
     ({"bench": "scenarios_online"}) whenever it has a scenarios sweep, and
     that row must report verify_failures == 0, detection_rate == 1.0,
     false_evidence == 0, and peak_open_rounds <= peak_bound — the online
     pipeline's bounded-memory claim (DESIGN.md §10) gated as a number;
  7. every scenarios_online row must carry a p99_settle_us field (the
     settle-latency quantile ROADMAP item 4 gates on — a row without it
     means the obs wiring silently fell out of the runner), and when the
     baseline's scenarios_online row also carries one, the fresh p99 must
     not exceed baseline * (1 + --max-regression). Settle latency is SIM
     time, so unlike wall-clock throughput it is host-independent; the
     quantile is a log2-bucket upper edge, so a >25% jump means the p99
     genuinely crossed into a later drain cycle;
  8. every scenarios_online row must carry the pipelining-evidence fields
     wall_ms and pipeline_overlap_ratio (DESIGN.md §12 — a row without
     them means the double-buffered drain fell out of the runner), the
     overlap ratio must be > 0 (some verification fold genuinely ran while
     the simulator advanced — true on any host, including 1-core
     containers), and when the row reports hw_threads > 1 the measured
     wall_ms must undercut sim_ms + verify_ms (the true-parallelism
     inequality: pipelining hid verification time behind the simulation);
  9. whenever the fresh run has an engine_throughput row it must also carry
     the crypto_profile row with BOTH a verifies_per_sec and a
     batch_speedup field (ROADMAP item 3's profile-first gate — a missing
     row or field means the crypto profile, or the batched-vs-stateless
     comparison that keeps batching honest, fell out of the bench). The
     batch_speedup ratio (batched throughput / per-call-context-rebuild
     throughput, best-of-passes so it is noise-robust) must be at least
     --min-batch-speedup (default 0.9): it is host-relative, so the gate
     only demands that the grouped batch path not PESSIMIZE verification —
     the regression that motivated the field was a batch loop quietly
     redoing per-call work. verifies_per_sec is then gated against the
     baseline: when the baseline's crypto_profile predates batch_speedup
     (i.e. predates the Montgomery refactor), the fresh value must clear a
     STEP gate of --min-vps-step x baseline (default 2.0 — the refactor's
     promised speedup, not a mere no-regression bound); once the baseline
     itself carries batch_speedup the ordinary (1 - --max-regression)
     floor applies;
  10. whenever the fresh run has a scenarios sweep it must carry the
     multiprocess deployment row ({"bench": "scenarios_mp"}), and that row
     must report fingerprint_parity == true AND
     multiprocess_obs_parity == true — the distributed run reproduced the
     monolithic report byte-for-byte and its merged metrics shards
     reproduced the single-process SIM-domain metrics fingerprint
     (DESIGN.md §14).

Speedup ratios (speedup_8v1, speedup_8v1_intra, agg_speedup) are gated
ONLY when BOTH the fresh and baseline engine_throughput rows report
hw_threads > 1: they depend on the runner's core count, and the 1-core
container that produces some baselines would make any ratio gate
meaningless there. The absolute rounds/sec floors below catch real
throughput regressions on any host.

Usage: check_bench_regression.py FRESH_JSONL BASELINE_JSON [--max-regression 0.25]
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = ("rounds_per_sec_1w", "rounds_per_sec_8w")

# Worker-scaling ratios: only meaningful when the host can actually run
# workers in parallel, so these are gated iff BOTH rows carry hw_threads > 1.
SPEEDUP_KEYS = ("speedup_8v1", "speedup_8v1_intra")


def load_rows(path):
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}: unparseable line {line!r}: {error}")
    return rows


def find_bench(rows, name):
    for row in rows:
        if row.get("bench") == name and "ok" not in row:
            return row
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="fresh bench_results.jsonl")
    parser.add_argument("baseline", help="committed BENCH_pr*.json baseline")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="max allowed fractional throughput drop")
    parser.add_argument("--min-batch-speedup", type=float, default=0.9,
                        help="floor for crypto_profile.batch_speedup "
                             "(batched vs per-call-rebuild verification)")
    parser.add_argument("--min-vps-step", type=float, default=2.0,
                        help="required verifies_per_sec multiple over a "
                             "baseline whose crypto_profile predates "
                             "batch_speedup (the Montgomery step gate)")
    args = parser.parse_args()

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)
    failures = []

    # 1. Every bench that ran must have succeeded.
    seen_metadata = 0
    for row in fresh:
        if "ok" in row:
            seen_metadata += 1
            if row["ok"] is not True:
                failures.append(f"bench {row.get('bench')!r} reported ok:false")
    if seen_metadata == 0:
        failures.append("fresh run carries no per-bench ok/seconds metadata "
                        "lines — did bench/run_all.sh produce this file?")

    # 2 + 3. Engine throughput: determinism and absolute-throughput floors.
    fresh_engine = find_bench(fresh, "engine_throughput")
    baseline_engine = find_bench(baseline, "engine_throughput")
    if fresh_engine is None:
        failures.append("fresh run has no engine_throughput row")
    else:
        if fresh_engine.get("deterministic") is not True:
            failures.append("engine_throughput reported deterministic:false — "
                            "Evidence diverged across workers/sharding modes")
        if baseline_engine is not None:
            for key in THROUGHPUT_KEYS:
                if key not in fresh_engine or key not in baseline_engine:
                    continue
                old, new = baseline_engine[key], fresh_engine[key]
                floor = old * (1.0 - args.max_regression)
                verdict = "ok" if new >= floor else "REGRESSION"
                print(f"{key}: baseline {old:.1f} -> fresh {new:.1f} "
                      f"(floor {floor:.1f}) {verdict}")
                if new < floor:
                    failures.append(
                        f"{key} regressed >{args.max_regression:.0%}: "
                        f"{old:.1f} -> {new:.1f}")
            # Speedup ratios: gated only when both hosts could actually
            # scale (hw_threads > 1 in fresh AND baseline rows); a 1-core
            # runner legitimately reports ratios near or below 1.0.
            if (fresh_engine.get("hw_threads", 0) > 1
                    and baseline_engine.get("hw_threads", 0) > 1):
                for key in SPEEDUP_KEYS:
                    if key not in fresh_engine or key not in baseline_engine:
                        continue
                    old, new = baseline_engine[key], fresh_engine[key]
                    floor = old * (1.0 - args.max_regression)
                    verdict = "ok" if new >= floor else "REGRESSION"
                    print(f"{key}: baseline {old:.2f} -> fresh {new:.2f} "
                          f"(floor {floor:.2f}) {verdict}")
                    if new < floor:
                        failures.append(
                            f"{key} regressed >{args.max_regression:.0%}: "
                            f"{old:.2f} -> {new:.2f}")
            else:
                print("speedup ratios: skipped (hw_threads <= 1 on fresh "
                      "or baseline host)")

    # 4 + 5. Adversarial scenarios: detection/false-evidence/determinism
    # gates plus matrix coverage.
    scenario_rows = [row for row in fresh if row.get("bench") == "scenarios"]
    gate_rows = [row for row in fresh if row.get("bench") == "scenarios_gate"]
    for row in scenario_rows:
        label = f"scenario {row.get('scenario')!r}"
        if row.get("detection_rate") != 1.0:
            failures.append(
                f"{label} detection_rate == {row.get('detection_rate')!r} "
                "(attack escaped the shipped evidence checks)")
        if row.get("false_evidence") != 0:
            failures.append(
                f"{label} false_evidence == {row.get('false_evidence')!r} "
                "(an honest AS was framed)")
        if row.get("audit_failures", 0) != 0:
            failures.append(
                f"{label} audit_failures == {row.get('audit_failures')!r}")
        if row.get("verify_failures", 0) != 0:
            failures.append(
                f"{label} verify_failures == {row.get('verify_failures')!r} "
                "(a verification task crashed and its findings were lost)")
    for row in gate_rows:
        label = f"scenario {row.get('scenario')!r}"
        if row.get("deterministic") is not True:
            failures.append(f"{label} diverged across worker counts")
        if row.get("online_parity") is not True:
            failures.append(
                f"{label} online run diverged from the offline fingerprint")
        if row.get("gates_ok") is not True:
            failures.append(f"{label} reported gates_ok:false")
    if scenario_rows or gate_rows:
        covered = {row.get("scenario") for row in scenario_rows}
        for name in ("equivocation_storm", "batch_split_evasion",
                     "drop_replay_chaos"):
            if name not in covered:
                failures.append(f"scenario sweep is missing {name!r}")

    # 6. Online long trace: bounded memory, no swallowed verification
    # failures. Required whenever the scenarios sweep ran at all.
    online_rows = [row for row in fresh
                   if row.get("bench") == "scenarios_online"]
    if (scenario_rows or gate_rows) and not online_rows:
        failures.append("fresh run has a scenarios sweep but no "
                        "scenarios_online long-trace row")
    for row in online_rows:
        label = f"online scenario {row.get('scenario')!r}"
        if row.get("verify_failures", 0) != 0:
            failures.append(
                f"{label} verify_failures == {row.get('verify_failures')!r}")
        if row.get("detection_rate") != 1.0:
            failures.append(
                f"{label} detection_rate == {row.get('detection_rate')!r}")
        if row.get("false_evidence", 0) != 0:
            failures.append(
                f"{label} false_evidence == {row.get('false_evidence')!r}")
        peak = row.get("peak_open_rounds")
        bound = row.get("peak_bound")
        if peak is None or bound is None or peak > bound:
            failures.append(
                f"{label} peak_open_rounds {peak!r} exceeds bound {bound!r} "
                "(online GC no longer bounds memory by open windows)")

    # 7. Settle-latency gate: p99_settle_us required on every fresh
    # scenarios_online row, and regression-bounded against the baseline's
    # row when the baseline already carries the field (pre-obs baselines
    # don't; the presence requirement alone still applies to fresh runs).
    baseline_online = find_bench(baseline, "scenarios_online")
    for row in online_rows:
        label = f"online scenario {row.get('scenario')!r}"
        fresh_p99 = row.get("p99_settle_us")
        if fresh_p99 is None:
            failures.append(
                f"{label} carries no p99_settle_us field — the settle "
                "latency instrumentation fell out of the runner")
            continue
        if baseline_online is None:
            continue
        base_p99 = baseline_online.get("p99_settle_us")
        if base_p99 is None or base_p99 <= 0:
            continue
        ceiling = base_p99 * (1.0 + args.max_regression)
        verdict = "ok" if fresh_p99 <= ceiling else "REGRESSION"
        print(f"p99_settle_us: baseline {base_p99} -> fresh {fresh_p99} "
              f"(ceiling {ceiling:.0f}) {verdict}")
        if fresh_p99 > ceiling:
            failures.append(
                f"{label} p99_settle_us regressed "
                f">{args.max_regression:.0%}: {base_p99} -> {fresh_p99}")

    # 8. Pipelined-drain evidence: wall_ms + pipeline_overlap_ratio must be
    # present on every fresh scenarios_online row, the overlap ratio must be
    # positive (host-independent: the fold window was in flight before the
    # harvest arrived), and on a multi-core host the wall clock must
    # undercut the serial sum sim_ms + verify_ms.
    for row in online_rows:
        label = f"online scenario {row.get('scenario')!r}"
        wall = row.get("wall_ms")
        ratio = row.get("pipeline_overlap_ratio")
        if wall is None or ratio is None:
            failures.append(
                f"{label} is missing wall_ms/pipeline_overlap_ratio — the "
                "pipelined drain instrumentation fell out of the runner")
            continue
        if not ratio > 0:
            failures.append(
                f"{label} pipeline_overlap_ratio == {ratio!r} — no "
                "verification overlapped the simulation (double buffering "
                "is not pipelining)")
        if row.get("hw_threads", 0) > 1:
            sim_ms = row.get("sim_ms", 0)
            verify_ms = row.get("verify_ms", 0)
            serial = sim_ms + verify_ms
            verdict = "ok" if wall < serial else "REGRESSION"
            print(f"pipeline wall_ms: {wall:.1f} vs serial "
                  f"{serial:.1f} (sim {sim_ms:.1f} + verify {verify_ms:.1f}) "
                  f"{verdict}")
            if not wall < serial:
                failures.append(
                    f"{label} wall_ms {wall} >= sim_ms + verify_ms "
                    f"{serial} on a {row.get('hw_threads')}-thread host — "
                    "pipelining hid no verification time")
        else:
            print(f"pipeline wall_ms inequality: skipped "
                  f"(hw_threads == {row.get('hw_threads')!r}); "
                  f"overlap ratio {ratio:.4f} gated instead")

    # 9. Crypto profile: verifies_per_sec AND batch_speedup must ride along
    # with every engine_throughput run. batch_speedup is gated by an
    # absolute host-relative floor; verifies_per_sec is step-gated against
    # pre-Montgomery baselines and regression-bounded afterwards.
    if fresh_engine is not None:
        fresh_profile = find_bench(fresh, "crypto_profile")
        if fresh_profile is None or "verifies_per_sec" not in fresh_profile:
            failures.append(
                "fresh run has an engine_throughput row but no crypto_profile "
                "row with verifies_per_sec — the crypto profile fell out of "
                "the bench (ROADMAP item 3)")
        else:
            speedup = fresh_profile.get("batch_speedup")
            if speedup is None:
                failures.append(
                    "crypto_profile carries no batch_speedup field — the "
                    "batched-vs-stateless comparison that keeps batching "
                    "honest fell out of the bench")
            else:
                verdict = ("ok" if speedup >= args.min_batch_speedup
                           else "REGRESSION")
                print(f"batch_speedup: fresh {speedup:.2f} "
                      f"(floor {args.min_batch_speedup:.2f}) {verdict}")
                if speedup < args.min_batch_speedup:
                    failures.append(
                        f"batch_speedup {speedup:.2f} < floor "
                        f"{args.min_batch_speedup:.2f} — the grouped batch "
                        "path is slower than rebuilding the per-key context "
                        "on every call")
            baseline_profile = find_bench(baseline, "crypto_profile")
            base_vps = (baseline_profile or {}).get("verifies_per_sec")
            if base_vps:
                new_vps = fresh_profile["verifies_per_sec"]
                if "batch_speedup" not in (baseline_profile or {}):
                    # Pre-Montgomery baseline: this is the refactor's step
                    # gate, not a no-regression bound.
                    floor = base_vps * args.min_vps_step
                    verdict = "ok" if new_vps >= floor else "REGRESSION"
                    print(f"verifies_per_sec: baseline {base_vps:.1f} -> "
                          f"fresh {new_vps:.1f} (step floor {floor:.1f} = "
                          f"{args.min_vps_step:.1f}x) {verdict}")
                    if new_vps < floor:
                        failures.append(
                            f"verifies_per_sec {new_vps:.1f} did not clear "
                            f"the {args.min_vps_step:.1f}x step gate over "
                            f"the pre-Montgomery baseline {base_vps:.1f}")
                else:
                    floor = base_vps * (1.0 - args.max_regression)
                    verdict = "ok" if new_vps >= floor else "REGRESSION"
                    print(f"verifies_per_sec: baseline {base_vps:.1f} -> "
                          f"fresh {new_vps:.1f} (floor {floor:.1f}) "
                          f"{verdict}")
                    if new_vps < floor:
                        failures.append(
                            f"verifies_per_sec regressed "
                            f">{args.max_regression:.0%}: "
                            f"{base_vps:.1f} -> {new_vps:.1f}")

    # 10. Multiprocess deployment parity: the scenarios_mp row must be
    # present alongside any scenarios sweep, and both parities must hold.
    mp_rows = [row for row in fresh if row.get("bench") == "scenarios_mp"]
    if (scenario_rows or gate_rows) and not mp_rows:
        failures.append("fresh run has a scenarios sweep but no scenarios_mp "
                        "multiprocess-deployment row (DESIGN.md §14)")
    for row in mp_rows:
        label = f"multiprocess scenario {row.get('scenario')!r}"
        if row.get("fingerprint_parity") is not True:
            failures.append(
                f"{label} fingerprint_parity != true — the distributed run "
                "diverged from the monolithic simulator run")
        if row.get("multiprocess_obs_parity") is not True:
            failures.append(
                f"{label} multiprocess_obs_parity != true — the merged "
                "metrics shards diverged from the single-process SIM-domain "
                "fingerprint")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
