// Experiment E1 (paper Figure 1 + §3.3): cost of one minimum-operator PVR
// round, per role, as the number of providers k and the bit-vector length L
// grow. RSA-1024 keys as in §3.8.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace pvr::bench {
namespace {

constexpr std::size_t kKeyBits = 1024;

void BM_Fig1_ProverRound(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::uint32_t max_len = static_cast<std::uint32_t>(state.range(1));
  const Fig1Instance& instance = fig1_instance(k, kKeyBits, max_len);
  crypto::Drbg rng(1, "bench-prover");

  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const core::ProverResult result = core::run_prover(
        instance.id, core::OperatorKind::kMinimum, instance.inputs, max_len,
        instance.keys.private_keys.at(1).priv, rng, {});
    benchmark::DoNotOptimize(result);
    wire_bytes = result.signed_bundle.encode().size() +
                 result.recipient_reveal.encode().size() +
                 result.export_statement.encode().size();
    for (const auto& [provider, reveal] : result.provider_reveals) {
      wire_bytes += reveal.encode().size();
    }
  }
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.counters["providers"] = static_cast<double>(k);
}
BENCHMARK(BM_Fig1_ProverRound)
    ->ArgsProduct({{2, 4, 8, 16, 32, 64}, {16}})
    ->ArgsProduct({{8}, {8, 32}})
    ->Unit(benchmark::kMillisecond);

void BM_Fig1_VerifyAsProvider(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const Fig1Instance& instance = fig1_instance(k, kKeyBits, 16);
  crypto::Drbg rng(2, "bench-verify-n");
  const core::ProverResult result = core::run_prover(
      instance.id, core::OperatorKind::kMinimum, instance.inputs, 16,
      instance.keys.private_keys.at(1).priv, rng, {});
  const bgp::AsNumber provider = instance.providers.front();
  const core::InputAnnouncement& own = instance.announcements.at(provider);
  const core::SignedMessage& reveal = result.provider_reveals.at(provider);

  for (auto _ : state) {
    const auto evidence = core::verify_as_provider(
        instance.keys.directory, provider, own, result.signed_bundle, &reveal);
    benchmark::DoNotOptimize(evidence);
  }
}
BENCHMARK(BM_Fig1_VerifyAsProvider)
    ->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1_VerifyAsRecipient(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::uint32_t max_len = static_cast<std::uint32_t>(state.range(1));
  const Fig1Instance& instance = fig1_instance(k, kKeyBits, max_len);
  crypto::Drbg rng(3, "bench-verify-b");
  const core::ProverResult result = core::run_prover(
      instance.id, core::OperatorKind::kMinimum, instance.inputs, max_len,
      instance.keys.private_keys.at(1).priv, rng, {});

  for (auto _ : state) {
    const auto evidence = core::verify_as_recipient(
        instance.keys.directory, 2, result.signed_bundle,
        &result.recipient_reveal, &result.export_statement);
    benchmark::DoNotOptimize(evidence);
  }
}
BENCHMARK(BM_Fig1_VerifyAsRecipient)
    ->ArgsProduct({{2, 8, 32}, {16}})
    ->ArgsProduct({{8}, {8, 32}})
    ->Unit(benchmark::kMillisecond);

// The existential operator (§3.2) for comparison: a single bit, so the
// prover cost is dominated by one signature.
void BM_Fig1_ExistentialProverRound(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const Fig1Instance& instance = fig1_instance(k, kKeyBits, 16);
  crypto::Drbg rng(4, "bench-exists");
  for (auto _ : state) {
    const core::ProverResult result = core::run_prover(
        instance.id, core::OperatorKind::kExistential, instance.inputs, 1,
        instance.keys.private_keys.at(1).priv, rng, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fig1_ExistentialProverRound)
    ->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pvr::bench

PVR_GBENCH_MAIN("fig1_minimum")
