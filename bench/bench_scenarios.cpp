// Adversarial scenario sweep over the src/scenario/ harness.
//
// For each named scenario (equivocation_storm, batch_split_evasion,
// drop_replay_chaos), on a >= 1000-AS generated power-law topology with
// jittered arrivals:
//
//   1. determinism: the report fingerprint must be byte-identical across
//      1/2/8 engine workers (primary seed) and the gates must hold on a
//      second seed as well;
//   2. online parity: the ONLINE pipeline (rounds verified as their
//      windows settle, batches sealed every 1/7/64 collection windows of
//      sim time and harvested one tick later — DESIGN.md §12 double
//      buffering, ON by default — settled state GC'd) must reproduce the
//      offline fingerprint byte-for-byte;
//   3. gates: detection_rate == 1.0, false_evidence == 0,
//      audit_failures == 0, verify_failures == 0 in EVERY run;
//   4. coalescing: equivocation_storm must batch staggered arrivals into
//      shared windows (batch_deadline > collect_window doing real work);
//   5. throughput: the full --rounds run at 8 workers is the measured row,
//      plus one LONG online trace (--online-rounds, default
//      max(4 * rounds, 2000)) of the storm scenario whose peak open-round
//      count must stay under a bound derived from the spec's timing —
//      the memory claim of DESIGN.md §10, gated in CI — and whose
//      scenarios_online row now also records the pipelining evidence
//      (wall_ms, sim_ms, verify_ms, pipeline_overlap_ratio, hw_threads):
//      overlap ratio must be > 0 everywhere, and on multi-core hosts
//      wall_ms must undercut sim_ms + verify_ms.
//
// One JSON line per scenario plus a scenarios_gate verdict row and one
// scenarios_online row (the formats check_bench_regression.py gates on),
// plus a summary line. Exits nonzero when any gate fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "scenario/multiprocess.h"
#include "scenario/runner.h"

namespace pvr::bench {
namespace {

struct ScenarioGate {
  bool ok = true;
  bool deterministic = true;
  bool online_parity = true;
};

[[nodiscard]] bool gates_hold(const scenario::ScenarioReport& report) {
  return report.detection_rate == 1.0 && report.false_evidence == 0 &&
         report.audit_failures == 0 && report.verify_failures == 0;
}

// Spec-derived ceiling for the online long trace's peak open-round count:
// rounds stay open for at most collection window + batching deadline +
// settle horizon + one drain interval, and arrive at one per
// mean_interarrival_us round-robined over the neighborhoods. 6x absorbs
// Poisson clumping and partial batches; an unbounded (GC-less) node would
// instead peak near the full trace length.
[[nodiscard]] std::uint64_t peak_bound_for(const scenario::ScenarioSpec& spec,
                                           const scenario::ScenarioReport& report) {
  const std::uint64_t span_us = spec.collect_window + spec.batch_deadline +
                                report.settle_horizon_us +
                                spec.drain_interval_us;
  const std::uint64_t per_hood_interarrival_us =
      std::max<std::uint64_t>(1, spec.traffic.mean_interarrival_us *
                                     spec.neighborhoods);
  return 6 * std::max<std::uint64_t>(1, span_us / per_hood_interarrival_us);
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;

  // Node-process re-exec path for the multiprocess leg below (the
  // conductor spawns THIS binary with --node; same verb contract as
  // example_multiprocess_world). The trailing slot is the per-process
  // trace base, "-" when tracing is off.
  if (argc >= 8 && std::strcmp(argv[1], "--node") == 0) {
    std::string node_trace_base;
    if (argc >= 9 && std::strcmp(argv[8], "-") != 0) node_trace_base = argv[8];
    return scenario::run_node_process(
        argv[2], std::strtoull(argv[3], nullptr, 10),
        std::strtoull(argv[4], nullptr, 10),
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10),
        static_cast<std::uint16_t>(std::strtoul(argv[7], nullptr, 10)),
        node_trace_base);
  }

  // --online-rounds=N sizes the long online trace independently of the
  // offline sweep, so CI can run a focused online smoke leg;
  // --trace-out=FILE arms Chrome trace capture for the long online trace
  // (written when that run finishes — open in chrome://tracing or
  // Perfetto). Both parsed (and stripped) before the shared --seed/--rounds
  // handling.
  std::size_t online_rounds_flag = 0;
  std::string trace_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--online-rounds=", 0) == 0) {
      online_rounds_flag = std::strtoull(argv[i] + 16, nullptr, 10);
      if (online_rounds_flag == 0) {
        std::fprintf(stderr, "bench_scenarios: bad --online-rounds value\n");
        return 2;
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
      if (trace_out.empty()) {
        std::fprintf(stderr, "bench_scenarios: bad --trace-out value\n");
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[kept] = nullptr;

  const BenchArgs args = parse_bench_args(&argc, argv);
  const std::size_t rounds = args.rounds.value_or(600);
  // The determinism cross-checks rerun each scenario several times; a
  // reduced round count keeps the sweep CI-sized while the measured run
  // stays full.
  const std::size_t det_rounds = std::max<std::size_t>(60, rounds / 10);
  const std::size_t online_rounds =
      online_rounds_flag != 0 ? online_rounds_flag
                              : std::max<std::size_t>(4 * rounds, 2000);

  std::printf("scenario sweep: %zu rounds/scenario (determinism checks at "
              "%zu, online long trace at %zu), seed %llu\n\n",
              rounds, det_rounds, online_rounds,
              static_cast<unsigned long long>(args.seed));
  std::printf("%-22s %-8s %-7s %-9s %-7s %-6s %-6s %-9s %-11s %-10s %-7s\n",
              "scenario", "workers", "rounds", "windows", "detect", "false",
              "audit", "coalesce", "rounds/sec", "determ", "online");

  bool all_ok = true;
  for (const std::string& name : scenario::scenario_names()) {
    ScenarioGate gate;
    std::string fingerprint_at_1;

    // Determinism matrix: 1/2/8 workers on BOTH seeds. Each seed is its
    // own workload, so fingerprints are compared within a seed; the gates
    // must hold in every cell.
    for (const std::uint64_t seed : {args.seed, args.seed + 1}) {
      std::string seed_fingerprint;
      for (const std::size_t workers : {1u, 2u, 8u}) {
        scenario::ScenarioSpec spec =
            scenario::named_scenario(name, seed, det_rounds);
        spec.workers = workers;
        const scenario::ScenarioReport report = scenario::run_scenario(spec);
        if (workers == 1) {
          seed_fingerprint = report.fingerprint();
          if (seed == args.seed) fingerprint_at_1 = seed_fingerprint;
        }
        if (report.fingerprint() != seed_fingerprint) {
          gate.deterministic = false;
        }
        if (!gates_hold(report)) gate.ok = false;
      }
    }

    // Online parity: drain cadences from every collection window to so
    // coarse the trace mostly settles between drains — the fingerprint
    // must match the offline run byte-for-byte either way (primary seed).
    for (const net::SimTime windows : {1u, 7u, 64u}) {
      scenario::ScenarioSpec spec =
          scenario::named_scenario(name, args.seed, det_rounds);
      spec.online = true;
      spec.drain_interval_us = spec.collect_window * windows;
      const scenario::ScenarioReport report = scenario::run_scenario(spec);
      if (report.fingerprint() != fingerprint_at_1) gate.online_parity = false;
      if (!gates_hold(report)) gate.ok = false;
    }

    // The measured run: full round count, 8 workers, primary seed.
    scenario::ScenarioSpec spec =
        scenario::named_scenario(name, args.seed, rounds);
    const scenario::ScenarioReport report = scenario::run_scenario(spec);
    if (!gates_hold(report)) gate.ok = false;
    // The storm scenario exists to exercise window coalescing; losing it
    // would silently un-exercise batch_deadline > collect_window again.
    if (name == "equivocation_storm" && !report.coalesced) gate.ok = false;

    std::printf("%-22s %-8zu %-7llu %-9llu %-7.4f %-6llu %-6llu %-9s "
                "%-11.1f %-10s %-7s\n",
                name.c_str(), report.workers,
                static_cast<unsigned long long>(report.rounds_started),
                static_cast<unsigned long long>(report.windows_fired),
                report.detection_rate,
                static_cast<unsigned long long>(report.false_evidence),
                static_cast<unsigned long long>(report.audit_failures),
                report.coalesced ? "yes" : "no", report.rounds_per_sec,
                gate.deterministic ? "yes" : "DIVERGED",
                gate.online_parity ? "yes" : "DIVERGED");

    std::printf("%s\n", report.to_json_line().c_str());
    // The JSON row above carries the measured run; determinism and parity
    // verdicts ride in a trailing compact row the regression gate reads.
    std::printf("{\"bench\":\"scenarios_gate\",\"scenario\":\"%s\","
                "\"seed\":%llu,\"deterministic\":%s,\"online_parity\":%s,"
                "\"gates_ok\":%s}\n",
                name.c_str(), static_cast<unsigned long long>(args.seed),
                gate.deterministic ? "true" : "false",
                gate.online_parity ? "true" : "false",
                gate.ok ? "true" : "false");
    all_ok = all_ok && gate.ok && gate.deterministic && gate.online_parity;
  }

  // The long online trace: the storm scenario at online_rounds, verified
  // entirely through the interleaved pipeline. This is the row that gates
  // the memory claim — peak_open_rounds must stay under the spec-derived
  // bound — and that a drain failure (verify_failures) cannot hide in.
  {
    scenario::ScenarioSpec spec = scenario::named_scenario(
        "equivocation_storm", args.seed, online_rounds);
    spec.online = true;
    // Trace capture covers exactly this run: the long online trace is the
    // one whose round lifecycle / worker occupancy is worth looking at.
    if (!trace_out.empty() && !obs::kCompiledIn) {
      std::fprintf(stderr,
                   "bench_scenarios: --trace-out ignored, tracing compiled "
                   "out (-DPVR_OBS=OFF)\n");
    }
    if (!trace_out.empty()) (void)obs::TraceWriter::global().open(trace_out);
    const scenario::ScenarioReport report = scenario::run_scenario(spec);
    if (!trace_out.empty() && obs::kCompiledIn) {
      if (obs::TraceWriter::global().close()) {
        std::fprintf(stderr, "bench_scenarios: trace written to %s\n",
                     trace_out.c_str());
      } else {
        std::fprintf(stderr, "bench_scenarios: could not write trace to %s\n",
                     trace_out.c_str());
      }
    }
    const std::uint64_t bound = peak_bound_for(spec, report);
    // pipeline_overlap_ratio > 0 is the overlap proof that holds on ANY
    // host (the fold window was in flight while the simulator advanced);
    // wall_ms < sim_ms + verify_ms is the true-parallelism inequality and
    // only gated when the host actually has multiple hardware threads
    // (here and in check_bench_regression.py rule 8).
    const bool overlap_ok =
        report.pipeline_overlap_ratio > 0.0 &&
        (report.hw_threads <= 1 ||
         report.wall_ms < report.sim_ms + report.verify_ms);
    const bool online_ok = gates_hold(report) &&
                           report.peak_open_rounds <= bound &&
                           report.drain_batches > 1 && overlap_ok;
    std::printf("\nonline long trace: %llu rounds, peak_open_rounds %llu "
                "(bound %llu), drain_batches %llu, verify_failures %llu, "
                "wall %.1f ms (sim %.1f + verify %.1f, overlap %.2f), "
                "%.1f rounds/sec %s\n",
                static_cast<unsigned long long>(report.rounds_started),
                static_cast<unsigned long long>(report.peak_open_rounds),
                static_cast<unsigned long long>(bound),
                static_cast<unsigned long long>(report.drain_batches),
                static_cast<unsigned long long>(report.verify_failures),
                report.wall_ms, report.sim_ms, report.verify_ms,
                report.pipeline_overlap_ratio, report.rounds_per_sec,
                online_ok ? "ok" : "FAIL");
    std::printf("{\"bench\":\"scenarios_online\",\"scenario\":\"%s\","
                "\"seed\":%llu,\"rounds\":%llu,\"detection_rate\":%.4f,"
                "\"false_evidence\":%llu,\"verify_failures\":%llu,"
                "\"peak_open_rounds\":%llu,\"peak_bound\":%llu,"
                "\"peak_root_digests\":%llu,\"drain_batches\":%llu,"
                "\"settle_horizon_us\":%llu,"
                "\"p50_settle_us\":%llu,\"p99_settle_us\":%llu,"
                "\"rsa_verifies\":%llu,\"sig_cache_hits\":%llu,"
                "\"hw_threads\":%zu,\"sim_ms\":%.1f,\"verify_ms\":%.1f,"
                "\"wall_ms\":%.1f,\"pipeline_overlap_ratio\":%.4f,"
                "\"rounds_per_sec\":%.1f}\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(args.seed),
                static_cast<unsigned long long>(report.rounds_started),
                report.detection_rate,
                static_cast<unsigned long long>(report.false_evidence),
                static_cast<unsigned long long>(report.verify_failures),
                static_cast<unsigned long long>(report.peak_open_rounds),
                static_cast<unsigned long long>(bound),
                static_cast<unsigned long long>(report.peak_root_digests),
                static_cast<unsigned long long>(report.drain_batches),
                static_cast<unsigned long long>(report.settle_horizon_us),
                static_cast<unsigned long long>(report.p50_settle_us),
                static_cast<unsigned long long>(report.p99_settle_us),
                static_cast<unsigned long long>(report.rsa_verifies),
                static_cast<unsigned long long>(report.sig_cache_hits),
                report.hw_threads, report.sim_ms, report.verify_ms,
                report.wall_ms, report.pipeline_overlap_ratio,
                report.rounds_per_sec);
    all_ok = all_ok && online_ok;
  }

  // Multiprocess deployment leg (DESIGN.md §14): a short storm run sharded
  // over 2 node processes + conductor. Gates BOTH parities — the report
  // fingerprint against the monolithic run, and the merged metrics shards
  // (conductor delta + every child's) against the single-process run's
  // SIM-domain metrics fingerprint. The per-rank obs_snapshot rows carry a
  // "rank" key; the single-process row above keeps its shape.
  {
    constexpr std::size_t kMpRounds = 24;
    constexpr std::size_t kMpProcesses = 2;
    scenario::MultiprocessOptions mp;
    mp.scenario = "equivocation_storm";
    mp.seed = args.seed;
    mp.rounds = kMpRounds;
    mp.processes = kMpProcesses;
    mp.self_exe = argv[0];
    const scenario::MultiprocessResult distributed =
        scenario::run_conductor(mp);
    const scenario::ScenarioReport reference = scenario::run_scenario(
        scenario::named_scenario(mp.scenario, mp.seed, mp.rounds));
    const bool fingerprint_parity =
        distributed.report.fingerprint() == reference.fingerprint();
    const bool obs_parity = distributed.merged_obs.sim_fingerprint() ==
                            reference.obs_sim_fingerprint;
    const bool mp_ok =
        fingerprint_parity && obs_parity && gates_hold(distributed.report);
    std::printf("\nmultiprocess leg: %zu rounds over %zu node processes — "
                "fingerprint %s, obs aggregation %s (%zu stats polls)\n",
                kMpRounds, kMpProcesses,
                fingerprint_parity ? "parity" : "DIVERGED",
                obs_parity ? "parity" : "DIVERGED",
                distributed.stats_timeline.size());
    std::printf("{\"bench\":\"scenarios_mp\",\"scenario\":\"%s\","
                "\"seed\":%llu,\"rounds\":%zu,\"processes\":%zu,"
                "\"fingerprint_parity\":%s,\"multiprocess_obs_parity\":%s,"
                "\"stats_polls\":%zu,\"obs_enabled\":%s}\n",
                mp.scenario.c_str(),
                static_cast<unsigned long long>(mp.seed), kMpRounds,
                kMpProcesses, fingerprint_parity ? "true" : "false",
                obs_parity ? "true" : "false",
                distributed.stats_timeline.size(),
                obs::kCompiledIn ? "true" : "false");
    for (std::size_t rank = 0; rank < distributed.child_obs.size(); ++rank) {
      std::printf("{\"bench\":\"obs_snapshot\",\"source\":\"multiprocess_"
                  "rank%zu\",\"rank\":%zu,\"seed\":%llu,\"obs_enabled\":%s,"
                  "%s}\n",
                  rank, rank, static_cast<unsigned long long>(mp.seed),
                  obs::kCompiledIn ? "true" : "false",
                  distributed.child_obs[rank].to_json_fields().c_str());
    }
    all_ok = all_ok && mp_ok;
  }

  emit_obs_snapshot("scenarios");
  std::printf("\nresult: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
