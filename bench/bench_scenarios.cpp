// Adversarial scenario sweep over the src/scenario/ harness.
//
// For each named scenario (equivocation_storm, batch_split_evasion,
// drop_replay_chaos), on a >= 1000-AS generated power-law topology with
// jittered arrivals:
//
//   1. determinism: the report fingerprint must be byte-identical across
//      1/2/8 engine workers (primary seed) and the gates must hold on a
//      second seed as well;
//   2. gates: detection_rate == 1.0, false_evidence == 0,
//      audit_failures == 0 in EVERY run;
//   3. coalescing: equivocation_storm must batch staggered arrivals into
//      shared windows (batch_deadline > collect_window doing real work);
//   4. throughput: the full --rounds run at 8 workers is the measured row.
//
// One JSON line per scenario (the format check_bench_regression.py gates
// on), plus a summary line. Exits nonzero when any gate fails.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/runner.h"

namespace pvr::bench {
namespace {

struct ScenarioGate {
  bool ok = true;
  bool deterministic = true;
};

[[nodiscard]] bool gates_hold(const scenario::ScenarioReport& report) {
  return report.detection_rate == 1.0 && report.false_evidence == 0 &&
         report.audit_failures == 0;
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;

  const BenchArgs args = parse_bench_args(&argc, argv);
  const std::size_t rounds = args.rounds.value_or(600);
  // The determinism cross-checks rerun each scenario four times; a reduced
  // round count keeps the sweep CI-sized while the measured run stays full.
  const std::size_t det_rounds = std::max<std::size_t>(60, rounds / 10);

  std::printf("scenario sweep: %zu rounds/scenario (determinism checks at "
              "%zu), seed %llu\n\n",
              rounds, det_rounds,
              static_cast<unsigned long long>(args.seed));
  std::printf("%-22s %-8s %-7s %-9s %-7s %-6s %-6s %-9s %-11s %-10s\n",
              "scenario", "workers", "rounds", "windows", "detect", "false",
              "audit", "coalesce", "rounds/sec", "determ");

  bool all_ok = true;
  for (const std::string& name : scenario::scenario_names()) {
    ScenarioGate gate;
    std::string fingerprint_at_1;

    // Determinism matrix: 1/2/8 workers on BOTH seeds. Each seed is its
    // own workload, so fingerprints are compared within a seed; the gates
    // must hold in every cell.
    for (const std::uint64_t seed : {args.seed, args.seed + 1}) {
      for (const std::size_t workers : {1u, 2u, 8u}) {
        scenario::ScenarioSpec spec =
            scenario::named_scenario(name, seed, det_rounds);
        spec.workers = workers;
        const scenario::ScenarioReport report = scenario::run_scenario(spec);
        if (workers == 1) fingerprint_at_1 = report.fingerprint();
        if (report.fingerprint() != fingerprint_at_1) {
          gate.deterministic = false;
        }
        if (!gates_hold(report)) gate.ok = false;
      }
    }

    // The measured run: full round count, 8 workers, primary seed.
    scenario::ScenarioSpec spec =
        scenario::named_scenario(name, args.seed, rounds);
    const scenario::ScenarioReport report = scenario::run_scenario(spec);
    if (!gates_hold(report)) gate.ok = false;
    // The storm scenario exists to exercise window coalescing; losing it
    // would silently un-exercise batch_deadline > collect_window again.
    if (name == "equivocation_storm" && !report.coalesced) gate.ok = false;

    std::printf("%-22s %-8zu %-7llu %-9llu %-7.4f %-6llu %-6llu %-9s "
                "%-11.1f %-10s\n",
                name.c_str(), report.workers,
                static_cast<unsigned long long>(report.rounds_started),
                static_cast<unsigned long long>(report.windows_fired),
                report.detection_rate,
                static_cast<unsigned long long>(report.false_evidence),
                static_cast<unsigned long long>(report.audit_failures),
                report.coalesced ? "yes" : "no", report.rounds_per_sec,
                gate.deterministic ? "yes" : "DIVERGED");

    std::printf("%s\n", report.to_json_line().c_str());
    // The JSON row above carries the measured run; determinism verdict and
    // gate outcome ride in a trailing compact row the regression gate reads.
    std::printf("{\"bench\":\"scenarios_gate\",\"scenario\":\"%s\","
                "\"seed\":%llu,\"deterministic\":%s,\"gates_ok\":%s}\n",
                name.c_str(), static_cast<unsigned long long>(args.seed),
                gate.deterministic ? "true" : "false",
                gate.ok ? "true" : "false");
    all_ok = all_ok && gate.ok && gate.deterministic;
  }

  std::printf("\nresult: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
