#!/usr/bin/env bash
# Builds (if needed) and runs every bench_* binary, emitting one JSON line
# per bench to stdout and to <build-dir>/bench_results.jsonl — the format
# future BENCH_*.json trajectory tracking consumes.
#
# Usage: bench/run_all.sh [build-dir]   (default: ./build)
set -u

BUILD_DIR="${1:-build}"
if [ ! -d "${BUILD_DIR}" ]; then
  echo "error: build dir '${BUILD_DIR}' not found (run cmake first)" >&2
  exit 1
fi

RESULTS="${BUILD_DIR}/bench_results.jsonl"
: > "${RESULTS}"

STATUS=0
for bench in "${BUILD_DIR}"/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  start="$(date +%s.%N)"
  # Google-Benchmark-based benches get trimmed iteration counts so the full
  # sweep stays CI-sized; plain harness benches ignore unknown argv.
  if "${bench}" --benchmark_min_time=0.05 >"${BUILD_DIR}/${name}.out" 2>&1; then
    ok=true
  else
    ok=false
    STATUS=1
  fi
  end="$(date +%s.%N)"
  elapsed="$(echo "${end} ${start}" | awk '{printf "%.2f", $1 - $2}')"
  # If the bench printed its own JSON line (e.g. bench_engine_throughput),
  # forward it verbatim; otherwise synthesize one from the run metadata.
  json_line="$(grep -E '^\{.*\}$' "${BUILD_DIR}/${name}.out" | tail -1)"
  if [ -z "${json_line}" ]; then
    json_line="{\"bench\":\"${name}\",\"ok\":${ok},\"seconds\":${elapsed}}"
  fi
  echo "${json_line}" | tee -a "${RESULTS}"
done

echo "wrote $(wc -l < "${RESULTS}") bench results to ${RESULTS}" >&2
exit "${STATUS}"
