#!/usr/bin/env bash
# Builds (if needed) and runs every bench_* binary, emitting JSON lines to
# stdout and to <build-dir>/bench_results.jsonl — the format the BENCH_*.json
# trajectory tracking consumes.
#
# Every JSON line a bench prints is forwarded (multi-line sweeps like
# bench_engine_throughput produce several rows), plus one synthesized
# metadata line per bench carrying ok/seconds, so a bench that crashes after
# printing rows can never masquerade as ok:true. A bench that exits 0 but
# prints NO JSON line is a failure too: every bench is required to emit at
# least one row, so a silently-crashing (or silently-skipping) bench can no
# longer hide behind its synthesized metadata line.
#
# Usage: bench/run_all.sh [build-dir]   (default: ./build)
# SEED=N forwards --seed=N to every bench (default 1); each bench records
# the seed in its JSON rows, so BENCH_*.json alone reproduces the run.
set -uo pipefail

BUILD_DIR="${1:-build}"
if [ ! -d "${BUILD_DIR}" ]; then
  echo "error: build dir '${BUILD_DIR}' not found (run cmake first)" >&2
  exit 1
fi

RESULTS="${BUILD_DIR}/bench_results.jsonl"
: > "${RESULTS}"

SEED="${SEED:-1}"
STATUS=0
for bench in "${BUILD_DIR}"/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  start="$(date +%s.%N)"
  # Google-Benchmark-based benches get trimmed iteration counts so the full
  # sweep stays CI-sized; plain harness benches ignore unknown argv.
  if "${bench}" --benchmark_min_time=0.05 --seed="${SEED}" \
      >"${BUILD_DIR}/${name}.out" 2>&1; then
    ok=true
  else
    ok=false
    STATUS=1
  fi
  end="$(date +%s.%N)"
  elapsed="$(echo "${end} ${start}" | awk '{printf "%.2f", $1 - $2}')"
  # Forward every JSON line the bench printed, verbatim. Zero JSON lines
  # means the bench died (or skipped its sweep) before producing a row —
  # fail fast instead of letting the metadata line mask it.
  json_lines="$(grep -cE '^\{.*\}$' "${BUILD_DIR}/${name}.out" || true)"
  if [ "${json_lines}" -eq 0 ]; then
    echo "error: ${name} emitted no JSON row (see ${BUILD_DIR}/${name}.out)" >&2
    ok=false
    STATUS=1
  else
    grep -E '^\{.*\}$' "${BUILD_DIR}/${name}.out" | tee -a "${RESULTS}"
  fi
  # Every bench must also persist its metrics snapshot (all-zero counters
  # under -DPVR_OBS=OFF, but the row itself is build-flavor independent),
  # so BENCH_*.json carries the obs counters alongside the bench's rows.
  obs_lines="$(grep -cE '^\{"bench":"obs_snapshot"' "${BUILD_DIR}/${name}.out" || true)"
  if [ "${obs_lines}" -eq 0 ]; then
    echo "error: ${name} emitted no obs_snapshot row (see ${BUILD_DIR}/${name}.out)" >&2
    ok=false
    STATUS=1
  fi
  # Always append the run metadata line; it is the authoritative ok/fail
  # record for this bench.
  echo "{\"bench\":\"${name}\",\"ok\":${ok},\"seconds\":${elapsed},\"seed\":${SEED}}" \
    | tee -a "${RESULTS}"
done

echo "wrote $(wc -l < "${RESULTS}") bench results to ${RESULTS}" >&2
exit "${STATUS}"
