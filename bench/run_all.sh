#!/usr/bin/env bash
# Builds (if needed) and runs every bench_* binary, emitting JSON lines to
# stdout and to <build-dir>/bench_results.jsonl — the format the BENCH_*.json
# trajectory tracking consumes.
#
# Every JSON line a bench prints is forwarded (multi-line sweeps like
# bench_engine_throughput produce several rows), plus one synthesized
# metadata line per bench carrying ok/seconds, so a bench that crashes after
# printing rows can never masquerade as ok:true.
#
# Usage: bench/run_all.sh [build-dir]   (default: ./build)
set -uo pipefail

BUILD_DIR="${1:-build}"
if [ ! -d "${BUILD_DIR}" ]; then
  echo "error: build dir '${BUILD_DIR}' not found (run cmake first)" >&2
  exit 1
fi

RESULTS="${BUILD_DIR}/bench_results.jsonl"
: > "${RESULTS}"

STATUS=0
for bench in "${BUILD_DIR}"/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  start="$(date +%s.%N)"
  # Google-Benchmark-based benches get trimmed iteration counts so the full
  # sweep stays CI-sized; plain harness benches ignore unknown argv.
  if "${bench}" --benchmark_min_time=0.05 >"${BUILD_DIR}/${name}.out" 2>&1; then
    ok=true
  else
    ok=false
    STATUS=1
  fi
  end="$(date +%s.%N)"
  elapsed="$(echo "${end} ${start}" | awk '{printf "%.2f", $1 - $2}')"
  # Forward every JSON line the bench printed, verbatim.
  grep -E '^\{.*\}$' "${BUILD_DIR}/${name}.out" | tee -a "${RESULTS}" || true
  # Always append the run metadata line; it is the authoritative ok/fail
  # record for this bench.
  echo "{\"bench\":\"${name}\",\"ok\":${ok},\"seconds\":${elapsed}}" \
    | tee -a "${RESULTS}"
done

echo "wrote $(wc -l < "${RESULTS}") bench results to ${RESULTS}" >&2
exit "${STATUS}"
