// Experiment E5 (paper §3.8): "This overhead can be burdensome during BGP
// message bursts, but it seems feasible to sign messages in batches,
// perhaps using a small MHT to reveal batched routes individually."
//
// Compares per-update RSA signatures against one signature over a Merkle
// root with per-update inclusion proofs, across burst sizes.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "crypto/merkle.h"
#include "crypto/rsa.h"

namespace pvr::bench {
namespace {

const crypto::RsaKeyPair& signer_key() {
  static const crypto::RsaKeyPair key = [] {
    crypto::Drbg rng(55, "bench-batch-keys");
    return crypto::generate_rsa_keypair(1024, rng);
  }();
  return key;
}

[[nodiscard]] std::vector<std::vector<std::uint8_t>> make_burst(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> updates;
  updates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates.push_back(route_len(1 + i % 12,
                                static_cast<bgp::AsNumber>(100 + i))
                          .canonical_bytes());
  }
  return updates;
}

// Baseline: one RSA signature per BGP update in the burst.
void BM_Burst_PerUpdateSigning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto burst = make_burst(n);
  for (auto _ : state) {
    for (const auto& update : burst) {
      benchmark::DoNotOptimize(crypto::rsa_sign(signer_key().priv, update));
    }
  }
  state.counters["per_update_ms"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Burst_PerUpdateSigning)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// PVR batching: hash every update into a small MHT, sign only the root.
void BM_Burst_BatchedSigning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto burst = make_burst(n);
  std::size_t proof_bytes = 0;
  for (auto _ : state) {
    const crypto::MerkleTree tree = crypto::MerkleTree::build(burst);
    const auto root = tree.root();
    benchmark::DoNotOptimize(crypto::rsa_sign(
        signer_key().priv, std::vector<std::uint8_t>(root.begin(), root.end())));
    // Each update still ships an individual inclusion proof.
    const crypto::MerkleProof proof = tree.prove(n / 2);
    benchmark::DoNotOptimize(proof);
    proof_bytes = proof.siblings.size() * crypto::kSha256DigestSize;
  }
  state.counters["proof_bytes"] = static_cast<double>(proof_bytes);
  state.counters["per_update_ms"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Burst_BatchedSigning)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Receiver side: verifying a batched update = one signature check per burst
// plus one log-size Merkle path per update.
void BM_Burst_BatchedVerification(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto burst = make_burst(n);
  const crypto::MerkleTree tree = crypto::MerkleTree::build(burst);
  const auto root = tree.root();
  const auto signature = crypto::rsa_sign(
      signer_key().priv, std::vector<std::uint8_t>(root.begin(), root.end()));
  const crypto::MerkleProof proof = tree.prove(n / 2);

  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(
        signer_key().pub, std::vector<std::uint8_t>(root.begin(), root.end()),
        signature));
    benchmark::DoNotOptimize(
        crypto::MerkleTree::verify(root, burst[n / 2], proof));
  }
}
BENCHMARK(BM_Burst_BatchedVerification)
    ->Arg(8)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pvr::bench

PVR_GBENCH_MAIN("batch_signing")
