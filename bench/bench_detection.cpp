// Experiment E7 (paper §2.3): the Detection and Accuracy properties,
// measured over randomized rounds.
//
//   Detection — every misbehavior class is caught in 100% of rounds by at
//               least one correct neighbor;
//   Evidence  — for the safety classes, the evidence convinces the auditor
//               in 100% of detected rounds;
//   Accuracy  — honest rounds produce zero violations (0% false positives).
#include <cstdio>

#include "bench_common.h"
#include "core/evidence.h"

namespace pvr::bench {
namespace {

constexpr std::uint32_t kMaxLen = 12;
constexpr int kRounds = 150;
constexpr std::size_t kProviders = 4;

struct Scenario {
  const char* name;
  core::ProverMisbehavior misbehavior;
  bool expect_detection;
  bool expect_provable;
};

struct Tally {
  int rounds = 0;
  int detected = 0;
  int provable = 0;
  int false_positive = 0;  // honest rounds flagged
};

[[nodiscard]] Tally run_scenario(const Scenario& scenario,
                                 const core::AsKeyPairs& keys,
                                 const std::vector<bgp::AsNumber>& providers,
                                 crypto::Drbg& rng) {
  Tally tally;
  const core::Auditor auditor(&keys.directory);

  for (int round = 0; round < kRounds; ++round) {
    tally.rounds += 1;
    const core::ProtocolId id{
        .prover = 1,
        .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
        .epoch = static_cast<std::uint64_t>(round + 1)};

    // Randomized inputs: each provider supplies a route with probability
    // 0.8, with a random length in [1, kMaxLen]. At least two providers
    // (with two *distinct* lengths) are forced, so every misbehavior class
    // produces a genuine violation rather than a vacuous lie — a prover
    // that "exports the longest route" when all routes are equally long has
    // not actually broken the promise, and the Detection property only
    // covers incorrect results.
    std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
    std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
    std::size_t provided = 0;
    std::size_t first_length = 0;
    for (const bgp::AsNumber provider : providers) {
      const bool provides = provided < 2 || rng.coin(0.8);
      if (!provides) {
        inputs[provider] = std::nullopt;
        continue;
      }
      provided += 1;
      std::size_t length = 1 + rng.uniform(kMaxLen);
      if (provided == 1) {
        first_length = length;
      } else if (provided == 2 && length == first_length) {
        length = first_length == kMaxLen ? first_length - 1 : first_length + 1;
      }
      const core::InputAnnouncement announcement{
          .id = id, .provider = provider, .route = route_len(length, provider)};
      announcements.emplace(provider, announcement);
      inputs[provider] = core::sign_message(
          provider, keys.private_keys.at(provider).priv, announcement.encode());
    }

    // Randomize per-round misbehavior targets where applicable.
    core::ProverMisbehavior misbehavior = scenario.misbehavior;
    if (misbehavior.wrong_opening_for.has_value() && !announcements.empty()) {
      misbehavior.wrong_opening_for = announcements.begin()->first;
    }
    if (misbehavior.skip_reveal_for.has_value() && !announcements.empty()) {
      misbehavior.skip_reveal_for = announcements.begin()->first;
    }

    const core::ProverResult result =
        core::run_prover(id, core::OperatorKind::kMinimum, inputs, kMaxLen,
                         keys.private_keys.at(1).priv, rng, misbehavior);

    std::vector<core::Evidence> evidence;
    for (const auto& [provider, announcement] : announcements) {
      const auto it = result.provider_reveals.find(provider);
      auto found = core::verify_as_provider(
          keys.directory, provider, announcement, result.signed_bundle,
          it == result.provider_reveals.end() ? nullptr : &it->second);
      evidence.insert(evidence.end(), found.begin(), found.end());
    }
    auto found = core::verify_as_recipient(keys.directory, 2,
                                           result.signed_bundle,
                                           &result.recipient_reveal,
                                           &result.export_statement);
    evidence.insert(evidence.end(), found.begin(), found.end());
    if (result.equivocating_bundle.has_value()) {
      if (auto conflict =
              core::check_equivocation(keys.directory, providers.front(),
                                       result.signed_bundle,
                                       *result.equivocating_bundle)) {
        evidence.push_back(std::move(*conflict));
      }
    }

    if (!evidence.empty()) {
      if (scenario.expect_detection) {
        tally.detected += 1;
      } else {
        tally.false_positive += 1;
      }
      for (const core::Evidence& item : evidence) {
        if (auditor.validate(item)) {
          tally.provable += 1;
          break;
        }
      }
    }
  }
  return tally;
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;

  const BenchArgs args = parse_bench_args(&argc, argv);
  std::vector<bgp::AsNumber> all = {1, 2};
  std::vector<bgp::AsNumber> providers;
  for (std::size_t i = 0; i < kProviders; ++i) {
    providers.push_back(1001 + static_cast<bgp::AsNumber>(i));
    all.push_back(providers.back());
  }
  crypto::Drbg key_rng(99 + args.seed, "detection-keys");
  const core::AsKeyPairs keys = core::generate_keys(all, key_rng, 512);

  const Scenario scenarios[] = {
      {"honest", {}, false, false},
      {"export_nonminimal", {.export_nonminimal = true}, true, true},
      {"nonminimal_forged_bits",
       {.export_nonminimal = true, .bits_match_lie = true}, true, true},
      {"suppress_export", {.suppress_export = true}, true, true},
      {"fabricate_route", {.fabricate_route = true}, true, true},
      {"nonmonotone_bits", {.nonmonotone_bits = true}, true, true},
      {"wrong_opening", {.wrong_opening_for = 1001}, true, true},
      {"skip_reveal", {.skip_reveal_for = 1001}, true, false},
      {"equivocate", {.equivocate = true}, true, true},
  };

  std::printf("E7: detection over %d randomized rounds per class "
              "(%zu providers, L=%u)\n\n",
              kRounds, kProviders, kMaxLen);
  std::printf("%-24s %-10s %-12s %-12s %-14s\n", "misbehavior", "rounds",
              "detected", "provable", "false_pos");

  bool all_ok = true;
  crypto::Drbg rng(7 + args.seed, "detection-rounds");
  for (const Scenario& scenario : scenarios) {
    const Tally tally = run_scenario(scenario, keys, providers, rng);
    const double detect_rate =
        100.0 * tally.detected / std::max(tally.rounds, 1);
    const double provable_rate =
        tally.detected == 0 ? 0.0 : 100.0 * tally.provable / tally.detected;
    std::printf("%-24s %-10d %-11.1f%% %-11.1f%% %-14d\n", scenario.name,
                tally.rounds, detect_rate, provable_rate, tally.false_positive);

    if (scenario.expect_detection && tally.detected != tally.rounds) all_ok = false;
    if (!scenario.expect_detection && tally.false_positive != 0) all_ok = false;
    if (scenario.expect_provable && tally.provable != tally.detected) all_ok = false;
  }

  std::printf("\nexpected shape: 100%% detection for every misbehavior class, "
              "0 false positives,\nauditor-provable for all safety classes "
              "(skip_reveal is a liveness fault).\n");
  std::printf("result: %s\n", all_ok ? "PASS" : "FAIL");
  std::printf("{\"bench\":\"detection\",\"seed\":%llu,\"rounds_per_class\":%d,"
              "\"all_ok\":%s}\n",
              static_cast<unsigned long long>(args.seed), kRounds,
              all_ok ? "true" : "false");
  pvr::bench::emit_obs_snapshot("detection");
  return all_ok ? 0 : 1;
}
