// Engine throughput: rounds/sec vs. worker count, shard salting, and
// aggregation batch size.
//
// Workload: `--rounds=N` precomputed (prover, prefix, epoch) minimum-
// operator rounds (default 10000: 25 prefixes x 400 epochs, 3 providers,
// RSA-512 to keep the single-machine run short). Every 7th round injects a
// Byzantine prover so the Evidence stream is non-trivial; the drained
// evidence must be byte-identical across worker counts AND sharding modes
// (the engine's determinism contract).
//
// Four measurements:
//   1. worker sweep  — full round verification through the engine at
//      1/2/4/8 workers, rounds spread over 25 prefixes (cross-round
//      parallelism; thread-level speedup tracks physical cores);
//   1b. intra sweep  — the same closures submitted under ONE hot
//      (prover, prefix): unsalted sharding pins them all to a single
//      shard/worker (the pre-salting speedup_8v1 = 0.97 behavior); salted
//      sharding spreads them, yielding speedup_8v1_intra on multi-core
//      hosts;
//   2. aggregation   — bundle authentications/sec when the prover signs one
//      Merkle root per epoch instead of one bundle per prefix (algorithmic
//      speedup, independent of core count);
//   3. batch verify  — BatchVerifier vs. per-message verify_message on
//      same-signer reveal batches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pvr_speaker.h"
#include "crypto/sha256.h"
#include "engine/batch_verifier.h"
#include "engine/verification_engine.h"

namespace pvr::bench {
namespace {

constexpr std::size_t kPrefixes = 25;
constexpr std::size_t kDefaultRounds = 10'000;
constexpr std::size_t kProviders = 3;
constexpr std::size_t kKeyBits = 512;
constexpr std::uint32_t kMaxLen = 16;

struct Round {
  core::ProtocolId id;
  core::ProverResult result;
  std::map<bgp::AsNumber, core::InputAnnouncement> announcements;
};

struct Workload {
  core::AsKeyPairs keys;
  std::vector<bgp::AsNumber> providers;
  bgp::AsNumber prover = 1;
  bgp::AsNumber recipient = 2;
  std::vector<Round> rounds;
};

[[nodiscard]] Workload build_workload(std::size_t round_count,
                                      std::uint64_t seed) {
  Workload w;
  std::vector<bgp::AsNumber> all = {w.prover, w.recipient};
  for (std::size_t i = 0; i < kProviders; ++i) {
    w.providers.push_back(1001 + static_cast<bgp::AsNumber>(i));
    all.push_back(w.providers.back());
  }
  crypto::Drbg key_rng(97 + seed, "engine-bench-keys");
  w.keys = core::generate_keys(all, key_rng, kKeyBits);

  crypto::Drbg len_rng(3 + seed, "engine-bench-lengths");
  w.rounds.reserve(round_count);
  for (std::size_t r = 0; r < round_count; ++r) {
    Round round;
    round.id = core::ProtocolId{
        .prover = w.prover,
        .prefix = bgp::Ipv4Prefix(
            0xCB007100u + (static_cast<std::uint32_t>(r % kPrefixes) << 8), 24),
        .epoch = 1 + r / kPrefixes};

    std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
    for (const bgp::AsNumber provider : w.providers) {
      const std::size_t length = 1 + len_rng.uniform(kMaxLen);
      const core::InputAnnouncement announcement{
          .id = round.id,
          .provider = provider,
          .route = route_len(length, provider)};
      round.announcements.emplace(provider, announcement);
      inputs[provider] = core::sign_message(
          provider, w.keys.private_keys.at(provider).priv, announcement.encode());
    }

    // Every 7th round misbehaves (rotating strategy) so verification finds
    // real violations and the determinism check has bytes to compare.
    core::ProverMisbehavior misbehavior;
    if (r % 7 == 6) {
      switch ((r / 7) % 3) {
        case 0: misbehavior.suppress_export = true; break;
        case 1: misbehavior.nonmonotone_bits = true; break;
        default: misbehavior.wrong_opening_for = w.providers[0]; break;
      }
    }
    crypto::Drbg round_rng(1000 + r, "engine-bench-round");
    round.result = core::run_prover(round.id, core::OperatorKind::kMinimum,
                                    inputs, kMaxLen,
                                    w.keys.private_keys.at(w.prover).priv,
                                    round_rng, misbehavior);
    w.rounds.push_back(std::move(round));
  }
  return w;
}

// Full verification of one round: all providers + the recipient.
[[nodiscard]] core::RoundFindings check_round(const Workload& w,
                                              const Round& round) {
  return verify_neighborhood(w.keys.directory, round.result,
                             round.announcements, {w.recipient});
}

[[nodiscard]] std::string evidence_digest(
    const std::vector<engine::RoundOutcome>& outcomes) {
  crypto::Sha256 hasher;
  for (const engine::RoundOutcome& outcome : outcomes) {
    for (const core::Evidence& item : outcome.findings.evidence) {
      hasher.update(item.to_string());
      for (const core::SignedMessage& message : item.messages) {
        const std::vector<std::uint8_t> encoded = message.encode();
        hasher.update(encoded);
      }
    }
  }
  return crypto::digest_hex(hasher.finalize());
}

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepResult {
  double rounds_per_sec = 0;
  std::string digest;
};

// Drains every round through one engine. When `hot_id` is set, every
// submission is keyed by that single (prover, prefix) with epoch = index —
// the hot-prefix case salting exists for (the closures are unchanged, only
// shard placement differs).
[[nodiscard]] SweepResult run_sweep(const Workload& w, std::size_t workers,
                                    bool salt_shards, bool hot_key) {
  engine::VerificationEngine engine(
      {.workers = workers, .salt_shards = salt_shards}, &w.keys.directory);
  const double t0 = now_seconds();
  for (std::size_t r = 0; r < w.rounds.size(); ++r) {
    const Round& round = w.rounds[r];
    core::ProtocolId key = round.id;
    if (hot_key) {
      key.prefix = w.rounds.front().id.prefix;
      key.epoch = r;
    }
    engine.submit(key, [&w, &round] { return check_round(w, round); });
  }
  const engine::EngineReport report = engine.drain();
  const double elapsed = now_seconds() - t0;
  return SweepResult{
      .rounds_per_sec = static_cast<double>(report.rounds) / elapsed,
      .digest = evidence_digest(report.outcomes)};
}

}  // namespace
}  // namespace pvr::bench

int main(int argc, char** argv) {
  using namespace pvr;
  using namespace pvr::bench;

  // parse_bench_args dies on malformed --rounds/--seed values: a typo
  // silently shrinking the sweep would feed garbage rounds/sec into the
  // regression gate's baseline comparison. Unknown flags (e.g. the
  // runner's --benchmark_min_time) are ignored.
  const BenchArgs args = parse_bench_args(&argc, argv);
  const std::size_t rounds =
      std::max<std::size_t>(kPrefixes, args.rounds.value_or(kDefaultRounds));
  std::printf("engine throughput: %zu rounds (%zu prefixes x %zu epochs), "
              "%zu providers, RSA-%zu, seed %llu\n\n",
              rounds, kPrefixes, rounds / kPrefixes, kProviders, kKeyBits,
              static_cast<unsigned long long>(args.seed));
  const double t_build = now_seconds();
  const Workload w = build_workload(rounds, args.seed);
  std::printf("workload built in %.1f s (prover CPU, untimed below)\n\n",
              now_seconds() - t_build);

  // --- 1. Worker sweep over full round verification (cross-round) -----------
  std::printf("%-8s %-10s %-12s %-9s  evidence_digest\n", "workers",
              "rounds", "rounds/sec", "speedup");
  std::string digest_at_1;
  double rps_at_1 = 0;
  double rps_at_8 = 0;
  bool deterministic = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const SweepResult result =
        run_sweep(w, workers, /*salt_shards=*/true, /*hot_key=*/false);
    if (workers == 1) {
      digest_at_1 = result.digest;
      rps_at_1 = result.rounds_per_sec;
    }
    if (workers == 8) rps_at_8 = result.rounds_per_sec;
    if (result.digest != digest_at_1) deterministic = false;
    std::printf("%-8zu %-10zu %-12.1f %-9.2f  %.16s\n", workers, rounds,
                result.rounds_per_sec, result.rounds_per_sec / rps_at_1,
                result.digest.c_str());
    // One JSON row per sweep cell, each carrying hw_threads so the
    // regression gate can tell a genuine scaling loss from a host that
    // never had the cores to scale on (rule: speedups gated only when
    // hw_threads > 1).
    std::printf("{\"bench\":\"engine_sweep\",\"seed\":%llu,\"workers\":%zu,"
                "\"rounds\":%zu,\"rounds_per_sec\":%.1f,\"speedup\":%.2f,"
                "\"hw_threads\":%u}\n",
                static_cast<unsigned long long>(args.seed), workers, rounds,
                result.rounds_per_sec, result.rounds_per_sec / rps_at_1,
                std::thread::hardware_concurrency());
  }
  std::printf("(thread-level speedup is bounded by physical cores: this host "
              "has %u)\n\n",
              std::thread::hardware_concurrency());

  // --- 1b. Intra-round sweep: every submission under ONE (prover, prefix) ---
  // Unsalted, a hot key serializes on one shard however many workers exist;
  // salted shard keys spread the same tasks across the pool. Identical
  // closures and submission order, so the digest must not move either.
  std::printf("%-22s %-10s %-12s %-9s\n", "intra (hot prefix)", "workers",
              "rounds/sec", "speedup");
  const SweepResult unsalted_hot_8 =
      run_sweep(w, 8, /*salt_shards=*/false, /*hot_key=*/true);
  const SweepResult salted_hot_1 =
      run_sweep(w, 1, /*salt_shards=*/true, /*hot_key=*/true);
  const SweepResult salted_hot_8 =
      run_sweep(w, 8, /*salt_shards=*/true, /*hot_key=*/true);
  const double rps_intra_1 = salted_hot_1.rounds_per_sec;
  const double rps_intra_8 = salted_hot_8.rounds_per_sec;
  std::printf("%-22s %-10d %-12.1f %-9.2f\n", "unsalted (pinned)", 8,
              unsalted_hot_8.rounds_per_sec,
              unsalted_hot_8.rounds_per_sec / rps_intra_1);
  std::printf("%-22s %-10d %-12.1f %-9.2f\n", "salted", 1, rps_intra_1, 1.0);
  std::printf("%-22s %-10d %-12.1f %-9.2f\n\n", "salted", 8, rps_intra_8,
              rps_intra_8 / rps_intra_1);
  struct IntraRow {
    const char* variant;
    int workers;
    const SweepResult* result;
  };
  for (const IntraRow& row :
       {IntraRow{"unsalted", 8, &unsalted_hot_8},
        IntraRow{"salted", 1, &salted_hot_1},
        IntraRow{"salted", 8, &salted_hot_8}}) {
    if (row.result->digest != digest_at_1) deterministic = false;
    std::printf("{\"bench\":\"engine_sweep_intra\",\"seed\":%llu,"
                "\"variant\":\"%s\",\"workers\":%d,\"rounds_per_sec\":%.1f,"
                "\"hw_threads\":%u}\n",
                static_cast<unsigned long long>(args.seed), row.variant,
                row.workers, row.result->rounds_per_sec,
                std::thread::hardware_concurrency());
  }

  // --- 2. Merkle-aggregated bundle mode ------------------------------------
  // Naive (batch=1): one signed bundle per (prefix, epoch) -> one RSA verify
  // per round. Aggregated: within each epoch the prover signs one Merkle
  // root per group of `batch` prefixes and reveals each prefix with a
  // log-size proof -> one RSA verify per group. Groups never span epochs
  // (the (prover, epoch) binding is part of the signed statement).
  std::printf("%-8s %-14s %-12s %-9s\n", "batch", "bundle_auths", "auths/sec",
              "speedup");
  std::vector<core::CommitmentBundle> bundles;
  bundles.reserve(rounds);
  for (const Round& round : w.rounds) {
    bundles.push_back(
        core::CommitmentBundle::decode(round.result.signed_bundle.payload));
  }
  double naive_aps = 0;
  double agg_aps_best = 0;
  for (const std::size_t batch : {1u, 5u, 25u}) {
    std::size_t auths = 0;
    std::size_t failures = 0;
    double elapsed = 0;
    if (batch == 1) {
      const double t0 = now_seconds();
      for (const Round& round : w.rounds) {
        if (!core::verify_message(w.keys.directory, round.result.signed_bundle)) {
          failures += 1;
        }
        auths += 1;
      }
      elapsed = now_seconds() - t0;
    } else {
      // Prover side (untimed): per epoch, aggregate each `batch`-prefix
      // group into one signed Merkle root.
      std::vector<std::pair<core::SignedMessage,
                            std::vector<engine::AggregatedOpening>>>
          groups;
      for (std::size_t epoch_start = 0; epoch_start < bundles.size();
           epoch_start += kPrefixes) {
        const std::uint64_t epoch = 1 + epoch_start / kPrefixes;
        const std::size_t epoch_count =
            std::min(kPrefixes, bundles.size() - epoch_start);
        for (std::size_t offset = 0; offset < epoch_count; offset += batch) {
          const std::size_t count = std::min(batch, epoch_count - offset);
          engine::AggregatedCommitment commitment = engine::aggregate_bundles(
              w.prover, epoch,
              std::span(bundles).subspan(epoch_start + offset, count),
              w.keys.private_keys.at(w.prover).priv);
          groups.emplace_back(std::move(commitment.signed_root),
                              std::move(commitment.openings));
        }
      }
      const double t0 = now_seconds();
      for (const auto& [signed_root, openings] : groups) {
        const std::vector<bool> ok = engine::verify_aggregated_openings(
            w.keys.directory, signed_root, openings);
        for (const bool valid : ok) {
          if (!valid) failures += 1;
          auths += 1;
        }
      }
      elapsed = now_seconds() - t0;
    }
    const double aps = static_cast<double>(auths) / elapsed;
    if (batch == 1) naive_aps = aps;
    agg_aps_best = std::max(agg_aps_best, aps);
    std::printf("%-8zu %-14zu %-12.0f %-9.2f%s\n", batch, auths, aps,
                aps / naive_aps, failures == 0 ? "" : "  FAILURES!");
  }
  std::printf("\n");

  // --- 3. Stateless vs shared-context vs batched verification ---------------
  //
  // Three measurements over the same signed reveals:
  //   stateless — crypto::rsa_verify, which rebuilds the per-key Montgomery
  //               context on EVERY call (the pre-context cost model);
  //   shared    — core::verify_message through the directory's
  //               VerifyContext (per-key precompute built once) — this is
  //               what engine workers and nodes actually pay, and the
  //               verifies_per_sec the regression gate tracks;
  //   batched   — engine::BatchVerifier over the shared context, messages
  //               grouped by signer per drain batch.
  // batch_speedup = batched / stateless: the honest end-to-end win of the
  // amortized path over per-call setup. Before the shared context, the
  // "batched" loop redid the same per-call work and the ratio pinned at
  // ~1.0 — the no-op batching this section now exists to catch.
  std::vector<core::SignedMessage> reveals;
  for (const Round& round : w.rounds) {
    for (const auto& [provider, reveal] : round.result.provider_reveals) {
      reveals.push_back(reveal);
    }
  }
  // Repeat each loop until the sample is large enough for a stable rate,
  // and take the best of several interleaved passes per mode: on a shared
  // host one unlucky scheduling quantum otherwise dominates a single pass
  // and the inter-mode ratio swings by tens of percent run to run.
  const std::size_t reps =
      reveals.empty() ? 0 : (2000 + reveals.size() - 1) / reveals.size();
  constexpr std::size_t kPasses = 3;

  double stateless_vps = 0;
  double shared_vps = 0;
  double batched_vps = 0;
  std::size_t valid_stateless = 0;
  std::size_t valid_single = 0;
  std::size_t valid_batch = 0;
  engine::BatchVerifier batch_verifier(&w.keys.directory);
  const double per_pass = static_cast<double>(reveals.size()) * reps;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const double t_stateless = now_seconds();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (const core::SignedMessage& message : reveals) {
        const crypto::RsaPublicKey* key = w.keys.directory.find(message.signer);
        if (key != nullptr &&
            crypto::rsa_verify(*key,
                               core::message_signing_input(message.signer,
                                                           message.payload),
                               message.signature)) {
          valid_stateless += 1;
        }
      }
    }
    stateless_vps =
        std::max(stateless_vps, per_pass / (now_seconds() - t_stateless));

    const double t_single = now_seconds();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (const core::SignedMessage& message : reveals) {
        if (core::verify_message(w.keys.directory, message)) valid_single += 1;
      }
    }
    shared_vps = std::max(shared_vps, per_pass / (now_seconds() - t_single));

    const double t_batch = now_seconds();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::vector<bool> batch_results = batch_verifier.verify(reveals);
      for (const bool ok : batch_results) valid_batch += ok ? 1 : 0;
    }
    batched_vps = std::max(batched_vps, per_pass / (now_seconds() - t_batch));
  }

  const double batch_speedup = batched_vps / stateless_vps;
  const bool verdicts_agree =
      valid_single == valid_batch && valid_stateless == valid_single;
  std::printf("batch verifier: %zu reveals x%zu x%zu passes  stateless %.0f/s  "
              "shared-ctx %.0f/s  batched %.0f/s  batch_speedup %.2f  "
              "(results %s)\n\n",
              reveals.size(), reps, kPasses, stateless_vps, shared_vps,
              batched_vps, batch_speedup,
              verdicts_agree ? "identical" : "DIVERGED!");

  // Crypto profile row (ROADMAP item 3: profile before accelerating).
  // verifies_per_sec is wall-clock measured over the shared-context loop
  // so it stays meaningful under -DPVR_OBS=OFF; the quantiles come from the
  // crypto.* wall histograms and read 0 in that flavor.
  const obs::HotMetrics& hot = obs::MetricsRegistry::global().hot;
  std::printf("{\"bench\":\"crypto_profile\",\"seed\":%llu,"
              "\"verifies_per_sec\":%.1f,\"batched_verifies_per_sec\":%.1f,"
              "\"stateless_verifies_per_sec\":%.1f,\"batch_speedup\":%.2f,"
              "\"rsa_verify_p50_us\":%llu,\"rsa_verify_p99_us\":%llu,"
              "\"mulmod_p99_us\":%llu,\"hw_threads\":%u}\n",
              static_cast<unsigned long long>(args.seed),
              shared_vps, batched_vps, stateless_vps, batch_speedup,
              static_cast<unsigned long long>(
                  hot.crypto_rsa_verify_us.quantile(0.5)),
              static_cast<unsigned long long>(
                  hot.crypto_rsa_verify_us.quantile(0.99)),
              static_cast<unsigned long long>(
                  hot.crypto_mulmod_us.quantile(0.99)),
              std::thread::hardware_concurrency());

  std::printf("{\"bench\":\"engine_throughput\",\"seed\":%llu,\"rounds\":%zu,"
              "\"rounds_per_sec_1w\":%.1f,\"rounds_per_sec_8w\":%.1f,"
              "\"speedup_8v1\":%.2f,"
              "\"rounds_per_sec_1w_intra\":%.1f,"
              "\"rounds_per_sec_8w_intra\":%.1f,"
              "\"speedup_8v1_intra\":%.2f,"
              "\"deterministic\":%s,"
              "\"agg_speedup\":%.2f,\"hw_threads\":%u}\n",
              static_cast<unsigned long long>(args.seed), rounds, rps_at_1,
              rps_at_8, rps_at_8 / rps_at_1, rps_intra_1,
              rps_intra_8, rps_intra_8 / rps_intra_1,
              deterministic ? "true" : "false", agg_aps_best / naive_aps,
              std::thread::hardware_concurrency());
  pvr::bench::emit_obs_snapshot("engine_throughput");
  return deterministic && verdicts_agree ? 0 : 1;
}
