// Experiment E2 (paper Figure 2 + §3.5–3.7): commitment, selective
// disclosure, and structural verification of multi-operator route-flow
// graphs, as the graph grows.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/graph_commitment.h"

namespace pvr::bench {
namespace {

struct Fig2Bench {
  rfg::RouteFlowGraph graph;
  std::map<rfg::VertexId, rfg::Value> values;
  core::Promise promise;
  rfg::AccessPolicy policy;  // recipient 99: structure + operators + output
};

[[nodiscard]] Fig2Bench make_fig2(std::size_t fallbacks) {
  Fig2Bench out;
  std::vector<bgp::AsNumber> fallback_asns;
  for (std::size_t i = 0; i < fallbacks; ++i) {
    fallback_asns.push_back(2 + static_cast<bgp::AsNumber>(i));
  }
  out.graph = rfg::make_figure2_graph(1, fallback_asns, 99);

  std::map<rfg::VertexId, rfg::Value> inputs;
  crypto::Drbg rng(fallbacks, "fig2-values");
  inputs[rfg::input_variable_id(1)] = route_len(2 + rng.uniform(8), 1);
  for (const bgp::AsNumber asn : fallback_asns) {
    inputs[rfg::input_variable_id(asn)] = route_len(2 + rng.uniform(8), asn);
  }
  out.values = out.graph.evaluate(inputs);

  out.promise = {.type = core::PromiseType::kFallbackUnlessPrimaryShorter,
                 .subset = {fallback_asns.begin(), fallback_asns.end()},
                 .primary = 1};
  for (const rfg::VertexId& id : out.graph.variable_ids()) {
    out.policy.grant(99, id, rfg::Component::kPredecessors);
    out.policy.grant(99, id, rfg::Component::kSuccessors);
  }
  for (const rfg::VertexId& id : out.graph.operator_ids()) {
    out.policy.grant_all(99, id);
  }
  out.policy.grant(99, rfg::kOutputVariableId, rfg::Component::kPayload);
  return out;
}

void BM_Fig2_CommitGraph(benchmark::State& state) {
  const Fig2Bench bench = make_fig2(static_cast<std::size_t>(state.range(0)));
  crypto::Drbg rng(1, "fig2-commit");
  for (auto _ : state) {
    const core::GraphCommitment commitment(bench.graph, bench.values, rng);
    benchmark::DoNotOptimize(commitment.root());
  }
  state.counters["vertices"] = static_cast<double>(bench.graph.vertex_count());
}
BENCHMARK(BM_Fig2_CommitGraph)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2_DiscloseVertex(benchmark::State& state) {
  const Fig2Bench bench = make_fig2(static_cast<std::size_t>(state.range(0)));
  crypto::Drbg rng(2, "fig2-disclose");
  const core::GraphCommitment commitment(bench.graph, bench.values, rng);
  std::size_t proof_bytes = 0;
  for (auto _ : state) {
    const auto disclosure = commitment.disclose("op:min", 99, bench.policy);
    benchmark::DoNotOptimize(disclosure);
    proof_bytes = disclosure.proof.byte_size();
  }
  state.counters["proof_bytes"] = static_cast<double>(proof_bytes);
}
BENCHMARK(BM_Fig2_DiscloseVertex)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2_VerifyDisclosure(benchmark::State& state) {
  const Fig2Bench bench = make_fig2(static_cast<std::size_t>(state.range(0)));
  crypto::Drbg rng(3, "fig2-verify");
  const core::GraphCommitment commitment(bench.graph, bench.values, rng);
  const auto disclosure = commitment.disclose("op:min", 99, bench.policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verify_vertex_disclosure(commitment.root(), disclosure));
  }
}
BENCHMARK(BM_Fig2_VerifyDisclosure)
    ->Arg(2)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

// The recipient's full workflow: verify all disclosures, rebuild the
// visible graph, statically check the promise.
void BM_Fig2_FullStructuralCheck(benchmark::State& state) {
  const Fig2Bench bench = make_fig2(static_cast<std::size_t>(state.range(0)));
  crypto::Drbg rng(4, "fig2-full");
  const core::GraphCommitment commitment(bench.graph, bench.values, rng);
  std::vector<core::VertexDisclosure> disclosures;
  for (const rfg::VertexId& id : bench.graph.variable_ids()) {
    disclosures.push_back(commitment.disclose(id, 99, bench.policy));
  }
  for (const rfg::VertexId& id : bench.graph.operator_ids()) {
    disclosures.push_back(commitment.disclose(id, 99, bench.policy));
  }

  for (auto _ : state) {
    core::DisclosedGraph view;
    for (const auto& disclosure : disclosures) {
      if (!view.add(commitment.root(), disclosure)) {
        state.SkipWithError("disclosure verification failed");
        return;
      }
    }
    benchmark::DoNotOptimize(view.implements_promise(bench.promise, 99));
  }
  state.counters["disclosures"] = static_cast<double>(disclosures.size());
}
BENCHMARK(BM_Fig2_FullStructuralCheck)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pvr::bench

PVR_GBENCH_MAIN("fig2_graph")
